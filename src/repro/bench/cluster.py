"""Cluster benchmark: multi-node scaling and recovery overhead (§15).

``python -m repro.bench --cluster`` measures two things and writes
``BENCH_cluster.json``:

* **Scaling** — the distributed Game of Life board, timing-only, on
  1/2/4/8 nodes (2 simulated GPUs each) over the simulated fabric: the
  cross-node analogue of Figure 6's intra-node curve. Per-node ghost
  exchanges ride the fabric instead of the PCIe model, so the curve bends
  where the network bisection starts to matter.

* **Recovery overhead** — the fault-free checkpointing run (the price of
  insurance) against four fault scenarios on 4 nodes: one node crash, two
  spaced crashes, a minority partition, and a degraded (slow) link. Every
  faulted run is functional-mode and asserted **bit-identical** to the
  fault-free board; the two-crash scenario is run twice and asserted
  deterministic (same board, same simulated time). The single-crash
  scenario is the acceptance gate: its simulated time must stay within
  ``max_overhead`` (default 2.0x) of the fault-free checkpointed run.

* **Elastic membership** — crash-then-repair scenarios exercising node
  re-admission (ISSUE 10): a crashed node repaired mid-run must pass
  probation, rejoin as an idle spare, and restore full checkpoint
  coverage (``replication_deficit == 0``); the reslab variant must
  redistribute the board back over all four nodes. An *armed-but-idle*
  plan (a repair scheduled far past the horizon) is asserted to cost
  **exactly zero** simulated time over the plain crash run — the
  membership machinery may not perturb runs that never use it.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.bench.reporting import fmt_table
from repro.cluster import (
    ClusterFaultPlan,
    ClusterStencil,
    NodeCrash,
    NodeRepair,
    Partition,
    SlowLink,
)
from repro.hardware.specs import GPUSpec, GTX_780
from repro.kernels.game_of_life import make_gol_kernel

NODE_COUNTS = (1, 2, 4, 8)
GPUS_PER_NODE = 2
#: Acceptance gate: losing one node may cost at most this factor over the
#: fault-free checkpointed run (ISSUE 9 / ROADMAP item 2).
MAX_OVERHEAD = 2.0


def _scaling(spec: GPUSpec, rows: int, cols: int, ticks: int) -> dict:
    """Strong scaling, timing-only: fixed board, growing node count."""
    kernel = make_gol_kernel("maps")
    out = {}
    for n in NODE_COUNTS:
        cs = ClusterStencil(
            spec, n, GPUS_PER_NODE, (rows, cols), kernel, functional=False
        )
        cs.run(ticks)
        out[n] = {"sim_time": cs.time}
    t1 = out[1]["sim_time"]
    for n in NODE_COUNTS:
        out[n]["speedup"] = t1 / out[n]["sim_time"]
    return out


def _fault_scenarios() -> dict:
    """Fault-plan factories, fresh per run (plans hold RNG/counter state).

    Times are placed mid-run for the recovery board geometry (64 rows, 4
    nodes: a fault-free tick is ~0.2 ms); the two crashes are spaced
    wider than the detection + re-replication latency (~2 ms), since a
    faster cascade is genuinely unrecoverable.
    """
    return {
        "crash_1": lambda: ClusterFaultPlan(
            node_crashes=[NodeCrash(2, 0.0015)]
        ),
        "crash_2_spaced": lambda: ClusterFaultPlan(
            node_crashes=[NodeCrash(1, 0.0009), NodeCrash(3, 0.005)]
        ),
        "partition_minority": lambda: ClusterFaultPlan(
            partitions=[
                Partition(groups=((0, 1, 2), (3,)), start=0.0008, end=1.0)
            ]
        ),
        "slow_link_25x": lambda: ClusterFaultPlan(
            slow_links=[SlowLink(src=1, dst=2, factor=25.0)]
        ),
    }


def _elastic_scenarios() -> dict:
    """Crash-then-repair plan factories (ISSUE 10). The repair at 4 ms
    lands after the crash has been detected and recovered (~3.2 ms), so
    the node re-announces, serves probation, and rejoins well inside the
    30-tick horizon."""
    return {
        # checkpoint_replicas=3 makes the anti-entropy visible: the
        # 3-survivor interregnum can only sustain factor 2, so the
        # rejoined spare must be shipped a full replica set.
        "crash_repair_rejoin": lambda: ClusterFaultPlan(
            node_crashes=[NodeCrash(2, 0.0015)],
            node_repairs=[NodeRepair(2, 0.004)],
            checkpoint_replicas=3,
        ),
        "crash_repair_reslab": lambda: ClusterFaultPlan(
            node_crashes=[NodeCrash(2, 0.0015)],
            node_repairs=[NodeRepair(2, 0.004)],
            reslab_on_rejoin=True,
        ),
        # A repair scheduled far past the horizon: the membership
        # machinery is armed but never fires. Must cost exactly nothing.
        "armed_idle": lambda: ClusterFaultPlan(
            node_crashes=[NodeCrash(2, 0.0015)],
            node_repairs=[NodeRepair(2, 1000.0)],
        ),
    }


def _run_recovery(
    spec: GPUSpec, board: np.ndarray, ticks: int, plan
) -> tuple[np.ndarray, dict, ClusterStencil]:
    kernel = make_gol_kernel("maps")
    cs = ClusterStencil(spec, 4, GPUS_PER_NODE, board, kernel, faults=plan)
    cs.run(ticks)
    stats = {
        "sim_time": cs.time,
        "nodes_left": len(cs.monitor.slabs),
        "recoveries": plan.recoveries if plan else 0,
        "nodes_lost": plan.nodes_lost if plan else 0,
        "checkpoints": plan.checkpoints_taken if plan else 0,
        "events": [type(e).__name__ for e in cs.events],
    }
    if plan is not None and plan.has_repairs:
        stats["membership"] = [e.action for e in cs.membership_log]
        stats["nodes_readmitted"] = plan.nodes_readmitted
        stats["replicas_shipped"] = plan.replicas_shipped
    return cs.board(), stats, cs


def measure_cluster(
    spec: GPUSpec = GTX_780,
    scaling_rows: int = 2048,
    scaling_cols: int = 2048,
    scaling_ticks: int = 8,
    recovery_rows: int = 64,
    recovery_cols: int = 32,
    recovery_ticks: int = 30,
    max_overhead: float = MAX_OVERHEAD,
) -> dict:
    """Run the scaling curve, the recovery matrix, and the elastic
    membership scenarios; return the result tree. Raises
    :class:`AssertionError` if a faulted board deviates from the
    fault-free one, if a replay is nondeterministic, if single-node-loss
    or rejoin overhead exceeds ``max_overhead``, if a repaired node fails
    to rejoin with full checkpoint coverage, or if an armed-but-idle
    repair plan costs any simulated time over the plain crash run."""
    results: dict = {
        "spec": spec.name,
        "gpus_per_node": GPUS_PER_NODE,
        "max_overhead": max_overhead,
        "scaling": {
            "rows": scaling_rows,
            "cols": scaling_cols,
            "ticks": scaling_ticks,
            "nodes": _scaling(spec, scaling_rows, scaling_cols, scaling_ticks),
        },
    }

    rng = np.random.default_rng(1)
    board = (
        rng.random((recovery_rows, recovery_cols)) < 0.4
    ).astype(np.int32)
    # The reference answer (no fault plan at all) and the cost baseline
    # (checkpointing on, nothing fails) are different runs: the baseline
    # pays for heartbeats and periodic checkpoints, the reference pays
    # for nothing.
    clean, no_plan, _ = _run_recovery(spec, board, recovery_ticks, None)
    base_board, baseline, _ = _run_recovery(
        spec, board, recovery_ticks, ClusterFaultPlan()
    )
    assert np.array_equal(base_board, clean), "checkpointing changed results"
    recovery = {
        "rows": recovery_rows,
        "cols": recovery_cols,
        "ticks": recovery_ticks,
        "no_faults_no_checkpoints": no_plan,
        "baseline": dict(
            baseline,
            insurance_overhead=baseline["sim_time"] / no_plan["sim_time"],
        ),
    }
    for name, make_plan in _fault_scenarios().items():
        out, stats, _ = _run_recovery(spec, board, recovery_ticks, make_plan())
        assert np.array_equal(out, clean), (
            f"{name}: recovered board is not bit-identical"
        )
        stats["overhead"] = stats["sim_time"] / baseline["sim_time"]
        stats["bit_identical"] = True
        recovery[name] = stats

    replay, stats2, _ = _run_recovery(
        spec, board, recovery_ticks, _fault_scenarios()["crash_2_spaced"]()
    )
    assert np.array_equal(replay, clean)
    assert stats2["sim_time"] == recovery["crash_2_spaced"]["sim_time"], (
        "two-crash recovery replays nondeterministically"
    )
    recovery["deterministic_replay"] = True

    gate = recovery["crash_1"]["overhead"]
    assert gate <= max_overhead, (
        f"single-node-loss overhead {gate:.2f}x exceeds the "
        f"{max_overhead:.1f}x acceptance gate"
    )
    results["recovery"] = recovery

    elastic: dict = {}
    for name, make_plan in _elastic_scenarios().items():
        plan = make_plan()
        out, stats, cs = _run_recovery(spec, board, recovery_ticks, plan)
        assert np.array_equal(out, clean), (
            f"{name}: board after re-admission is not bit-identical"
        )
        stats["overhead"] = stats["sim_time"] / baseline["sim_time"]
        stats["bit_identical"] = True
        if name == "armed_idle":
            # Zero-overhead invariant: an armed-but-unused repair plan
            # must match the plain crash run to the last float.
            assert stats["sim_time"] == recovery["crash_1"]["sim_time"], (
                "armed-but-idle repair plan perturbed the crash run"
            )
            stats["zero_overhead"] = True
        else:
            assert "re-admit" in stats["membership"], (
                f"{name}: node was never re-admitted"
            )
            deg = plan.replicas_for(len(cs.monitor.live_nodes()))
            deficit = cs.monitor.replication_deficit(deg)
            assert deficit == 0, (
                f"{name}: replication deficit {deficit} after rejoin"
            )
            stats["replication_deficit"] = deficit
            if name == "crash_repair_rejoin":
                assert stats["replicas_shipped"] > 0, (
                    "anti-entropy shipped nothing at factor 3"
                )
            assert stats["overhead"] <= max_overhead, (
                f"{name}: overhead {stats['overhead']:.2f}x exceeds the "
                f"{max_overhead:.1f}x acceptance gate"
            )
        if name == "crash_repair_rejoin":
            assert cs.monitor.status[2] == "idle", (
                "rejoined node should be an idle spare"
            )
        if name == "crash_repair_reslab":
            assert cs.monitor.status[2] == "live", (
                "reslab_on_rejoin should restore the node to the ring"
            )
            assert len(cs.monitor.slabs) == 4, (
                "reslab_on_rejoin should redistribute over all 4 nodes"
            )
        elastic[name] = stats

    _, stats2, cs2 = _run_recovery(
        spec, board, recovery_ticks,
        _elastic_scenarios()["crash_repair_rejoin"](),
    )
    assert stats2["sim_time"] == elastic["crash_repair_rejoin"]["sim_time"], (
        "rejoin scenario replays nondeterministically"
    )
    assert stats2["membership"] == elastic["crash_repair_rejoin"][
        "membership"
    ], "membership log replays nondeterministically"
    elastic["deterministic_replay"] = True
    results["elastic"] = elastic
    return results


def cluster_report(results: dict) -> str:
    """The result tree as aligned plain-text tables."""
    sc = results["scaling"]
    rows = [
        [
            str(n),
            f"{sc['nodes'][n]['sim_time'] * 1e3:.2f} ms",
            f"{sc['nodes'][n]['speedup']:.2f}x",
        ]
        for n in NODE_COUNTS
    ]
    scaling = fmt_table(
        f"Cluster scaling: Game of Life {sc['rows']}x{sc['cols']}, "
        f"{sc['ticks']} ticks, {results['gpus_per_node']} GPUs/node, "
        f"{results['spec']}",
        ["nodes", "sim time", "speedup"],
        rows,
    )
    rec = results["recovery"]
    rows = [
        [
            "baseline",
            f"{rec['baseline']['sim_time'] * 1e3:.2f} ms",
            "1.00x",
            "4",
            "0",
            "-",
        ]
    ]
    for name in (
        "crash_1", "crash_2_spaced", "partition_minority", "slow_link_25x"
    ):
        r = rec[name]
        rows.append(
            [
                name,
                f"{r['sim_time'] * 1e3:.2f} ms",
                f"{r['overhead']:.2f}x",
                str(r["nodes_left"]),
                str(r["recoveries"]),
                "yes" if r["bit_identical"] else "NO",
            ]
        )
    recovery = fmt_table(
        f"Recovery overhead: {rec['rows']}x{rec['cols']} board, "
        f"{rec['ticks']} ticks, 4 nodes (gate: crash_1 <= "
        f"{results['max_overhead']:.1f}x)",
        ["scenario", "sim time", "overhead", "nodes", "recoveries",
         "bit-identical"],
        rows,
    )
    el = results["elastic"]
    rows = []
    for name in ("crash_repair_rejoin", "crash_repair_reslab", "armed_idle"):
        r = el[name]
        rows.append(
            [
                name,
                f"{r['sim_time'] * 1e3:.2f} ms",
                f"{r['overhead']:.2f}x",
                str(r["nodes_left"]),
                str(r.get("nodes_readmitted", 0)),
                str(r.get("replicas_shipped", 0)),
                "yes" if r["bit_identical"] else "NO",
            ]
        )
    elastic = fmt_table(
        "Elastic membership: crash at 1.5 ms, repair at 4 ms "
        "(armed_idle: repair past horizon, exact-zero overhead)",
        ["scenario", "sim time", "overhead", "slabs", "readmitted",
         "shipped", "bit-identical"],
        rows,
    )
    return scaling + "\n\n" + recovery + "\n\n" + elastic


def write_cluster_json(results: dict, path: str | pathlib.Path) -> None:
    pathlib.Path(path).write_text(json.dumps(results, indent=2) + "\n")
