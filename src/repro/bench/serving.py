"""Serving-under-load benchmark: latency percentiles and goodput vs
offered load (``python -m repro.bench --serving``, DESIGN.md §14).

Method:

1. **Calibrate** — warm one replica and measure the full-batch service
   time of each model; node capacity is then
   ``max_replicas * max_batch / service_time`` requests/second (the
   throughput ceiling with every replica running full batches
   back-to-back).
2. **Load sweep** — replay seeded Poisson traces at 0.5x / 1x / 2x / 4x
   of that capacity and report p50/p95/p99 latency, goodput (within-SLO
   completions per second), SLO attainment, mean batch size, and the
   replica peak. A bursty (ON/OFF-modulated) trace at 1x shows the tail
   cost of burstiness at equal offered load.
3. **Determinism** — the 1x point runs twice; latencies and result
   hashes must be bit-identical.
4. **Composition** — the same 1x trace re-runs under memory pressure
   (device memory clamped) and with an injected straggler (device 1 at
   2x compute time). Latencies shift; the per-request result hash must
   not — batching, scaling, pressure, and stragglers change *when*, not
   *what*.

``--serving-p99-gate X`` (CI) fails the run when the 1x-load Poisson
p99 latency exceeds ``X`` times the calibrated full-batch service time.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

import numpy as np

from repro.bench.reporting import fmt_table
from repro.hardware import GTX_780, GPUSpec
from repro.serving import (
    ServingConfig,
    ServingNode,
    ServingReport,
    bursty_trace,
    poisson_trace,
)
from repro.serving.trace import ArrivalTrace
from repro.sim.faults import FaultPlan, Straggler

#: Offered-load multiples of calibrated capacity for the Poisson sweep.
LOAD_POINTS = (0.5, 1.0, 2.0, 4.0)
#: Requests per trace (open-loop; thousands, per DESIGN.md §14).
N_REQUESTS = 1000
TRACE_SEED = 2015


def _percentiles(lat: np.ndarray) -> dict:
    if len(lat) == 0:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    return {
        "p50": float(np.percentile(lat, 50)),
        "p95": float(np.percentile(lat, 95)),
        "p99": float(np.percentile(lat, 99)),
    }


def calibrate_capacity(cfg: ServingConfig) -> dict:
    """Measure warm full-batch service times on one replica; derive the
    node's request-rate capacity."""
    from repro.serving.service import _Replica
    from repro.serving.trace import Request

    node = ServingNode(cfg).node
    rep = _Replica(node, 0, cfg)
    rep.warmup()
    times: dict[str, float] = {}
    for kind in ("lenet", "sgemm"):
        reqs = [
            Request(rid=-2 - i, kind=kind, arrival=0.0, seed=i)
            for i in range(cfg.max_batch)
        ]
        rep.engines[kind].serve(reqs)
        # Second serve is the warm steady state (plans cached, graphs
        # captured); use it as the calibrated service time.
        t0 = node.time
        rep.engines[kind].serve(reqs)
        times[kind] = node.time - t0
    maxr = cfg.max_replicas if cfg.max_replicas is not None else cfg.num_gpus
    mean_service = sum(times.values()) / len(times)
    capacity = maxr * cfg.max_batch / mean_service
    return {
        "service_times": times,
        "mean_service": mean_service,
        "max_replicas": maxr,
        "capacity_rps": capacity,
    }


def _point(report: ServingReport, load_x: float) -> dict:
    return {
        "load_x": load_x,
        "pattern": report.pattern,
        "offered_rate": report.offered_rate,
        "n_requests": report.n_requests,
        "makespan": report.makespan,
        "throughput": report.throughput,
        "goodput": report.goodput,
        "slo_attainment": report.slo_attainment,
        "mean_batch": report.mean_batch,
        "batches": report.batches,
        "peak_replicas": report.peak_replicas,
        "provisionings": report.provisionings,
        "scaling_events": len(report.scaling_events),
        "graph_captures": report.graph_captures,
        "graph_replayed_pairs": report.graph_replayed_pairs,
        "results_hash": report.results_hash(),
        **_percentiles(report.latencies),
    }


def measure_serving(
    spec: GPUSpec = GTX_780,
    n: int = N_REQUESTS,
    p99_gate: float | None = None,
) -> dict:
    """Run the full serving benchmark; returns the result tree.

    Raises :class:`AssertionError` on a determinism violation, a
    composition-changed-results violation, or (when ``p99_gate`` is set)
    a blown p99 budget.
    """
    cfg = ServingConfig(spec=spec)
    calib = calibrate_capacity(cfg)
    cap = calib["capacity_rps"]
    results: dict = {
        "spec": spec.name,
        "n_requests": n,
        "slo": cfg.slo,
        "calibration": calib,
        "load_points": [],
    }

    def run(trace: ArrivalTrace, c: ServingConfig = cfg) -> ServingReport:
        return ServingNode(c).run(trace)

    trace_1x = None
    for x in LOAD_POINTS:
        trace = poisson_trace(n, rate=x * cap, seed=TRACE_SEED)
        rep = run(trace)
        results["load_points"].append(_point(rep, x))
        if x == 1.0:
            trace_1x, rep_1x = trace, rep
    assert trace_1x is not None

    bt = bursty_trace(n, rate=cap, seed=TRACE_SEED)
    results["bursty_1x"] = _point(run(bt), 1.0)

    # Determinism: replaying the same trace must be bit-identical, in
    # results *and* in the virtual timeline.
    rep_again = run(trace_1x)
    lat_same = bool(
        np.array_equal(rep_1x.latencies, rep_again.latencies)
    )
    hash_same = rep_1x.results_hash() == rep_again.results_hash()
    results["determinism"] = {
        "latencies_identical": lat_same,
        "results_identical": hash_same,
    }
    assert lat_same and hash_same, "serving replay diverged across runs"

    # Composition: pressure and stragglers may move latency, never bits.
    pressured = run(
        trace_1x, dataclasses.replace(cfg, capacity_frac=0.4)
    )
    straggled = run(
        trace_1x,
        dataclasses.replace(
            cfg,
            faults=FaultPlan(
                stragglers=(Straggler(device=1, compute_factor=2.0),)
            ),
        ),
    )
    results["composition"] = {
        "pressure_0.4x": {
            **_point(pressured, 1.0),
            "results_match_plain": pressured.results_hash()
            == rep_1x.results_hash(),
        },
        "straggler_dev1_2x": {
            **_point(straggled, 1.0),
            "results_match_plain": straggled.results_hash()
            == rep_1x.results_hash(),
        },
    }
    assert results["composition"]["pressure_0.4x"]["results_match_plain"], (
        "memory pressure changed request results"
    )
    assert results["composition"]["straggler_dev1_2x"][
        "results_match_plain"
    ], "straggler injection changed request results"

    if p99_gate is not None:
        budget = p99_gate * calib["mean_service"]
        p99 = next(
            p["p99"] for p in results["load_points"] if p["load_x"] == 1.0
        )
        results["p99_gate"] = {"factor": p99_gate, "budget": budget}
        assert p99 <= budget, (
            f"p99 latency regression: {p99 * 1e3:.3f} ms at 1x load "
            f"exceeds the gate of {p99_gate:g} x service time "
            f"({budget * 1e3:.3f} ms)"
        )
    return results


def serving_report(results: dict) -> str:
    """The result tree as aligned plain-text tables."""
    calib = results["calibration"]

    def row(p: dict, label: str) -> list[str]:
        return [
            label,
            f"{p['offered_rate']:.0f}/s",
            f"{p['p50'] * 1e3:.3f} ms",
            f"{p['p95'] * 1e3:.3f} ms",
            f"{p['p99'] * 1e3:.3f} ms",
            f"{p['goodput']:.0f}/s",
            f"{p['slo_attainment'] * 100:.1f}%",
            f"{p['mean_batch']:.2f}",
            str(p["peak_replicas"]),
        ]

    rows = [
        row(p, f"poisson {p['load_x']:g}x")
        for p in results["load_points"]
    ]
    rows.append(row(results["bursty_1x"], "bursty 1x"))
    t1 = fmt_table(
        f"Serving under load ({results['spec']}, "
        f"capacity {calib['capacity_rps']:.0f} req/s, "
        f"SLO {results['slo'] * 1e3:.0f} ms)",
        [
            "trace",
            "offered",
            "p50",
            "p95",
            "p99",
            "goodput",
            "SLO att.",
            "batch",
            "replicas",
        ],
        rows,
    )
    comp = results["composition"]
    rows2 = [
        [
            name,
            f"{p['p99'] * 1e3:.3f} ms",
            f"{p['goodput']:.0f}/s",
            "yes" if p["results_match_plain"] else "NO",
        ]
        for name, p in comp.items()
    ]
    t2 = fmt_table(
        "Composition at 1x load (latency moves, results must not)",
        ["scenario", "p99", "goodput", "bit-identical"],
        rows2,
    )
    det = results["determinism"]
    t3 = (
        "determinism: latencies "
        + ("identical" if det["latencies_identical"] else "DIVERGED")
        + ", results "
        + ("identical" if det["results_identical"] else "DIVERGED")
    )
    return "\n".join([t1, "", t2, "", t3])


def write_serving_json(results: dict, path: str | pathlib.Path) -> None:
    pathlib.Path(path).write_text(json.dumps(results, indent=2) + "\n")
