"""Job-server benchmark: queue waits, preemption overhead, fairness
(DESIGN.md §13).

``python -m repro.bench --server`` measures three things about the
multi-tenant job server, functional-mode so results can be verified:

* **Contended scenario** — three tenants (Game of Life, histogram,
  chained SGEMM) share a 4-GPU node under a time slice that forces
  preemptions. Per job: queue wait, preemption count, execution time
  (sum of lease times), and the **preemption overhead** — execution time
  over an unshared solo run of the identical workload. The overhead is
  the price of checkpoint/resume (each resume re-distributes host state);
  the bench fails if it exceeds ``OVERHEAD_GATE`` (1.2x) for any demo
  workload. Every finished job's output is asserted **bit-identical** to
  its solo run.
* **Fairness vs offered load** — a 3-tenant open-loop arrival trace at
  0.5x/1x/2x load; per load: Jain's fairness index over share-normalized
  tenant GPU-seconds and queue-wait p50/p95.
* **Determinism** — the contended scenario runs twice; job histories,
  simulated times and outputs must match exactly.

Results are written to ``BENCH_server.json``.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.bench.reporting import fmt_table
from repro.hardware.specs import GPUSpec, GTX_780
from repro.server.jobs import JobSpec, TenantQuota
from repro.server.server import JobServer, solo_run
from repro.server.workloads import (
    GoLWorkload,
    HistogramWorkload,
    SgemmWorkload,
)

#: Fail the bench if any demo job's execution time exceeds this multiple
#: of its unshared solo run (acceptance gate, CI-enforced).
OVERHEAD_GATE = 1.2
TIME_SLICE = 2e-4
LOADS = (0.5, 1.0, 2.0)

#: (tenant, name, factory) — identical construction for solo and shared
#: runs, which is what makes bit-identity assertable.
DEMO = (
    ("alice", "gol", lambda: GoLWorkload(size=48, iterations=8, seed=0)),
    ("bob", "hist", lambda: HistogramWorkload(size=64, iterations=6, seed=1)),
    ("carol", "sgemm", lambda: SgemmWorkload(size=32, iterations=4, seed=2)),
)
DEMO_GPUS = 2


def _percentiles(xs: list[float]) -> dict:
    if not xs:
        return {"p50": 0.0, "p95": 0.0}
    arr = np.asarray(xs, dtype=float)
    return {
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
    }


def _run_contended(spec: GPUSpec, solos: dict) -> dict:
    srv = JobServer(spec, num_gpus=4, time_slice=TIME_SLICE)
    jobs = {}
    for tenant, name, factory in DEMO:
        jobs[name] = srv.submit(
            JobSpec(factory(), tenant=tenant, name=name, gpus=DEMO_GPUS)
        )
    srv.run()
    out: dict = {"jobs": {}, "sim_time": srv.node.time,
                 "fairness": srv.fairness()}
    waits = []
    for name, job in jobs.items():
        assert job.state == "DONE", f"{name}: {job.state} ({job.error})"
        solo_result, solo_time = solos[name]
        got = job.spec.workload.result()
        assert np.array_equal(got, solo_result), (
            f"{name}: shared-run output differs from solo run"
        )
        overhead = job.sim_time_used / solo_time
        waits.append(job.queue_wait)
        out["jobs"][name] = {
            "tenant": job.spec.tenant,
            "queue_wait": job.queue_wait,
            "preemptions": job.preemptions,
            "exec_time": job.sim_time_used,
            "solo_time": solo_time,
            "overhead": overhead,
            "history": [list(h) for h in job.history],
        }
    out["queue_wait"] = _percentiles(waits)
    out["max_overhead"] = max(
        j["overhead"] for j in out["jobs"].values()
    )
    return out


def _run_load(spec: GPUSpec, load: float) -> dict:
    """Open-loop arrivals: two jobs per tenant, spaced by the contended
    scenario's service time scaled by 1/load (2x load = arrivals twice
    as dense as the node can serve)."""
    base_spacing = 6e-4 / load
    srv = JobServer(
        spec,
        num_gpus=4,
        time_slice=TIME_SLICE,
        quotas={"alice": TenantQuota(share=2.0)},
    )
    jobs = []
    k = 0
    for wave in range(2):
        for tenant, name, factory in DEMO:
            jobs.append(
                srv.submit(
                    JobSpec(
                        factory(),
                        tenant=tenant,
                        name=f"{name}.{wave}",
                        gpus=DEMO_GPUS,
                        arrival=k * base_spacing,
                    )
                )
            )
            k += 1
    srv.run()
    waits = [j.queue_wait for j in jobs if j.queue_wait is not None]
    return {
        "load": load,
        "fairness": srv.fairness(),
        "queue_wait": _percentiles(waits),
        "done": sum(1 for j in jobs if j.state == "DONE"),
        "jobs": len(jobs),
    }


def measure_server(spec: GPUSpec = GTX_780) -> dict:
    """Run solo baselines, the contended scenario (twice — determinism
    assert), and the offered-load sweep. Raises ``AssertionError`` on a
    non-bit-identical output, an overhead above ``OVERHEAD_GATE``, or a
    nondeterministic schedule."""
    solos = {}
    for tenant, name, factory in DEMO:
        wl = factory()
        result, t = solo_run(wl, spec, num_gpus=4, gpus=DEMO_GPUS)
        solos[name] = (result, t)
    shared = _run_contended(spec, solos)
    replay = _run_contended(spec, solos)
    assert shared == replay or _histories(shared) == _histories(replay), (
        "job-server schedule is nondeterministic"
    )
    assert shared["sim_time"] == replay["sim_time"], (
        "job-server simulated time is nondeterministic"
    )
    assert shared["max_overhead"] <= OVERHEAD_GATE, (
        f"preemption overhead {shared['max_overhead']:.3f}x exceeds the "
        f"{OVERHEAD_GATE}x gate"
    )
    return {
        "spec": spec.name,
        "time_slice": TIME_SLICE,
        "overhead_gate": OVERHEAD_GATE,
        "solo": {name: {"sim_time": t} for name, (_, t) in solos.items()},
        "contended": shared,
        "loads": [_run_load(spec, load) for load in LOADS],
    }


def _histories(run: dict) -> list:
    return [run["jobs"][n]["history"] for n in sorted(run["jobs"])]


def server_report(results: dict) -> str:
    """The result tree as aligned plain-text tables."""
    c = results["contended"]
    rows = [
        [
            name,
            r["tenant"],
            f"{r['queue_wait'] * 1e3:.3f} ms",
            str(r["preemptions"]),
            f"{r['exec_time'] * 1e3:.3f} ms",
            f"{r['solo_time'] * 1e3:.3f} ms",
            f"{r['overhead']:.3f}x",
        ]
        for name, r in c["jobs"].items()
    ]
    t1 = fmt_table(
        f"Job server: contended 3-tenant scenario ({results['spec']}, "
        f"slice {results['time_slice'] * 1e3:.2g} ms, "
        f"fairness {c['fairness']:.3f})",
        ["job", "tenant", "wait", "preempt", "exec", "solo", "overhead"],
        rows,
    )
    rows = [
        [
            f"{r['load']:.1f}x",
            f"{r['fairness']:.3f}",
            f"{r['queue_wait']['p50'] * 1e3:.3f} ms",
            f"{r['queue_wait']['p95'] * 1e3:.3f} ms",
            f"{r['done']}/{r['jobs']}",
        ]
        for r in results["loads"]
    ]
    t2 = fmt_table(
        "Fairness and queue wait vs offered load",
        ["load", "fairness", "wait p50", "wait p95", "done"],
        rows,
    )
    return t1 + "\n\n" + t2


def write_server_json(results: dict, path: str | pathlib.Path) -> None:
    pathlib.Path(path).write_text(json.dumps(results, indent=2) + "\n")
