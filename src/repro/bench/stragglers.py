"""Straggler-mitigation benchmark: makespan recovery under slow devices
(DESIGN.md §11).

``python -m repro.bench --stragglers`` runs Game of Life and chained
SGEMM (4 GPUs, timing-only, per-iteration synchronisation) with device 1
computing 1.5x / 2x / 4x slower, plus a transient scenario where the
4x slowdown heals a quarter of the way into the run. Every scenario is
measured unmitigated and with ``FaultPlan.mitigate_stragglers`` on; the
report shows both overheads over the fault-free baseline and the
speculation/hedge counters. Persistent scenarios always improve; the
transient one may trail the unmitigated run slightly — the feedback loop
pays for re-segmenting in and back out when the slowdown heals right
after it rebalanced.

Built-in acceptance checks (raise ``AssertionError`` on regression):

* at the 4x factor the mitigated run finishes within 1.5x of the
  fault-free baseline (vs ~4x unmitigated) for both workloads;
* mitigation is bit-identical — a small functional Game of Life run per
  scenario must equal the fault-free reference exactly;
* the mitigated timeline is deterministic — the 4x scenario is run twice
  and asserted identical in simulated time and executed command count.

Results are written to ``BENCH_stragglers.json``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Callable

import numpy as np

from repro.bench.reporting import fmt_table
from repro.core import Matrix, Scheduler
from repro.hardware.specs import GPUSpec, GTX_780
from repro.kernels.game_of_life import (
    gol_containers,
    gol_reference_step,
    make_gol_kernel,
)
from repro.libs.cublas import make_sgemm_routine, sgemm_containers
from repro.sim.faults import FaultPlan, Straggler
from repro.sim.node import SimNode

GOL_SIZE = 8192
GOL_ITERS = 20
SGEMM_SIZE = 2048
SGEMM_ITERS = 10
NUM_GPUS = 4
SLOW_DEVICE = 1
FACTORS = (1.5, 2.0, 4.0)
#: The acceptance bound: a 4x-slow device must cost at most this much
#: over the fault-free baseline once mitigation is on.
TARGET = 1.5


def _run_gol(spec: GPUSpec, size: int, iters: int, faults) -> dict:
    node = SimNode(spec, NUM_GPUS, functional=False, faults=faults)
    sched = Scheduler(node)
    kernel = make_gol_kernel()
    a = Matrix(size, size, np.uint8, "gol_a")
    b = Matrix(size, size, np.uint8, "gol_b")
    sched.analyze_call(kernel, *gol_containers(a, b))
    sched.analyze_call(kernel, *gol_containers(b, a))
    cur, nxt = a, b
    for _ in range(iters):
        h = sched.invoke(kernel, *gol_containers(cur, nxt))
        sched.wait(h)  # iteration boundary: the feedback loop's cadence
        cur, nxt = nxt, cur
    sched.gather_async(cur)
    return _result(node, sched, faults)


def _run_sgemm(spec: GPUSpec, size: int, iters: int, faults) -> dict:
    node = SimNode(spec, NUM_GPUS, functional=False, faults=faults)
    sched = Scheduler(node)
    gemm = make_sgemm_routine()
    bmat = Matrix(size, size, np.float32, "B")
    x = Matrix(size, size, np.float32, "X")
    y = Matrix(size, size, np.float32, "Y")
    sched.analyze_call(gemm, *sgemm_containers(x, bmat, y))
    sched.analyze_call(gemm, *sgemm_containers(y, bmat, x))
    cur, nxt = x, y
    for _ in range(iters):
        h = sched.invoke_unmodified(gemm, *sgemm_containers(cur, bmat, nxt))
        sched.wait(h)
        cur, nxt = nxt, cur
    sched.gather_async(cur)
    return _result(node, sched, faults)


def _result(node: SimNode, sched: Scheduler, faults) -> dict:
    t = sched.wait_all()
    return {
        "sim_time": t,
        "commands": node.engine.commands_executed,
        "speculations_fired": faults.speculations_fired if faults else 0,
        "hedges_fired": faults.hedges_fired if faults else 0,
    }


WORKLOADS: dict[str, Callable[[GPUSpec, int, int, FaultPlan | None], dict]] = {
    "game_of_life": _run_gol,
    "sgemm_chain": _run_sgemm,
}


def _scenarios(
    baseline_time: float,
) -> dict[str, Callable[[bool], FaultPlan]]:
    """Fault-plan factories keyed by scenario name; fresh plans per run
    (plans hold the mitigation counters)."""
    scenarios: dict[str, Callable[[bool], FaultPlan]] = {}
    for factor in FACTORS:
        scenarios[f"compute_{factor:g}x"] = (
            lambda mitigate, f=factor: FaultPlan(
                stragglers=[
                    Straggler(device=SLOW_DEVICE, compute_factor=f)
                ],
                mitigate_stragglers=mitigate,
            )
        )
    # 4x slow only for the first quarter of the run, then healed: the
    # feedback loop must rebalance in and back out.
    scenarios["transient_4x"] = lambda mitigate: FaultPlan(
        stragglers=[
            Straggler(
                device=SLOW_DEVICE,
                compute_factor=4.0,
                start=0.0,
                end=baseline_time * 0.25,
            )
        ],
        mitigate_stragglers=mitigate,
    )
    return scenarios


def _assert_bit_identical(make_plan: Callable[[bool], FaultPlan]) -> None:
    """Small functional Game of Life run: the mitigated result must equal
    the fault-free reference bit for bit."""
    n, iters, seed = 256, 6, 7

    def run(faults):
        node = SimNode(GTX_780, NUM_GPUS, functional=True, faults=faults)
        sched = Scheduler(node)
        a = Matrix(n, n, np.uint8, "A")
        b = Matrix(n, n, np.uint8, "B")
        board = np.random.default_rng(seed).integers(
            0, 2, (n, n), dtype=np.uint8
        )
        a.bind(board.copy())
        b.bind(np.zeros_like(board))
        kernel = make_gol_kernel()
        sched.analyze_call(kernel, *gol_containers(a, b))
        sched.analyze_call(kernel, *gol_containers(b, a))
        cur, nxt = a, b
        for _ in range(iters):
            h = sched.invoke(kernel, *gol_containers(cur, nxt))
            sched.wait(h)
            cur, nxt = nxt, cur
        sched.gather_async(cur)
        sched.wait_all()
        return cur.host.copy()

    expected = np.random.default_rng(seed).integers(
        0, 2, (n, n), dtype=np.uint8
    )
    for _ in range(iters):
        expected = gol_reference_step(expected)
    out = run(make_plan(True))
    assert np.array_equal(out, expected), (
        "straggler mitigation changed the computed result"
    )


def measure_stragglers(
    spec: GPUSpec = GTX_780,
    gol_size: int = GOL_SIZE,
    gol_iters: int = GOL_ITERS,
    sgemm_size: int = SGEMM_SIZE,
    sgemm_iters: int = SGEMM_ITERS,
) -> dict:
    """Run every workload under every straggler scenario, unmitigated and
    mitigated; return the result tree. Raises :class:`AssertionError` if
    the 4x acceptance bound, bit-identity, or determinism fails."""
    sizes = {
        "game_of_life": (gol_size, gol_iters),
        "sgemm_chain": (sgemm_size, sgemm_iters),
    }
    results: dict = {
        "spec": spec.name,
        "num_gpus": NUM_GPUS,
        "slow_device": SLOW_DEVICE,
        "target": TARGET,
        "sizes": {k: {"size": v[0], "iters": v[1]} for k, v in sizes.items()},
        "workloads": {},
    }
    for name, fn in WORKLOADS.items():
        size, iters = sizes[name]
        baseline = fn(spec, size, iters, None)
        base_t = baseline["sim_time"]
        entry: dict = {"baseline": baseline}
        for scen, make_plan in _scenarios(base_t).items():
            off = fn(spec, size, iters, make_plan(False))
            on = fn(spec, size, iters, make_plan(True))
            off["overhead"] = off["sim_time"] / base_t
            on["overhead"] = on["sim_time"] / base_t
            entry[scen] = {"unmitigated": off, "mitigated": on}
        worst = entry["compute_4x"]
        assert worst["mitigated"]["overhead"] <= TARGET, (
            f"{name}: 4x straggler mitigated to "
            f"{worst['mitigated']['overhead']:.2f}x, target {TARGET}x"
        )
        replay = fn(spec, size, iters, _scenarios(base_t)["compute_4x"](True))
        assert replay["sim_time"] == worst["mitigated"]["sim_time"], (
            f"{name}: mitigated timeline is nondeterministic "
            f"({replay['sim_time']} != {worst['mitigated']['sim_time']})"
        )
        assert replay["commands"] == worst["mitigated"]["commands"], (
            f"{name}: mitigated command stream is nondeterministic"
        )
        results["workloads"][name] = entry
    for scen, make_plan in _scenarios(1.0).items():
        _assert_bit_identical(make_plan)
    results["bit_identical"] = True
    return results


def stragglers_report(results: dict) -> str:
    """The result tree as an aligned plain-text table."""
    rows = []
    for name, entry in results["workloads"].items():
        base = entry["baseline"]["sim_time"]
        rows.append(
            [name, "baseline", f"{base * 1e3:.2f} ms", "1.00x", "", "", ""]
        )
        for scen, r in entry.items():
            if scen == "baseline":
                continue
            off, on = r["unmitigated"], r["mitigated"]
            rows.append([
                "", scen,
                f"{off['sim_time'] * 1e3:.2f} ms",
                f"{off['overhead']:.2f}x",
                f"{on['overhead']:.2f}x",
                str(on["speculations_fired"]),
                str(on["hedges_fired"]),
            ])
    title = (
        f"Straggler mitigation: device {results['slow_device']} degraded, "
        f"{results['num_gpus']}x {results['spec']} "
        f"(target <= {results['target']}x at 4x)"
    )
    return fmt_table(
        title,
        ["workload", "scenario", "unmitigated", "off", "on", "spec", "hedge"],
        rows,
    )


def write_stragglers_json(results: dict, path: str | pathlib.Path) -> None:
    pathlib.Path(path).write_text(json.dumps(results, indent=2) + "\n")
