"""Memory-pressure benchmark: the slowdown-vs-oversubscription curve
(DESIGN.md §10).

``python -m repro.bench --pressure`` runs Game of Life (4 GPUs) and chained
SGEMM (2 GPUs) timing-only, first with ample memory to probe the in-core
working set (max per-device peak), then with per-device capacity clamped to
1.0x / 0.6x / 0.3x / 0.1x of that working set. Each pressured run reports
the simulated time, its slowdown over the ample run, and how the
degradation ladder absorbed the deficit (evictions, chunk kernels). Runs
whose irreducible chunk footprint exceeds capacity — SGEMM's chunk-invariant
B below ~0.5x — are recorded as typed ``CapacityError`` rows rather than
failures: refusing with a named datum *is* the specified behavior there.

One pressured configuration is run twice and asserted identical (simulated
time and executed command count): degradation must be deterministic.
Results are written to ``BENCH_pressure.json``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Callable, Optional

import dataclasses

import numpy as np

from repro.bench.reporting import fmt_table
from repro.core import Matrix, Scheduler
from repro.errors import CapacityError
from repro.hardware.specs import GPUSpec, GTX_780
from repro.kernels.game_of_life import gol_containers, make_gol_kernel
from repro.libs.cublas import make_sgemm_routine, sgemm_containers
from repro.sim.node import SimNode

FACTORS = (1.0, 0.6, 0.3, 0.1)
GOL_SIZE = 2048
GOL_ITERS = 4
GOL_GPUS = 4
SGEMM_SIZE = 1024
SGEMM_ITERS = 4
SGEMM_GPUS = 2


def _run_gol(spec: GPUSpec) -> dict:
    node = SimNode(spec, GOL_GPUS, functional=False)
    sched = Scheduler(node)
    kernel = make_gol_kernel()
    a = Matrix(GOL_SIZE, GOL_SIZE, np.uint8, "gol_a")
    b = Matrix(GOL_SIZE, GOL_SIZE, np.uint8, "gol_b")
    sched.analyze_call(kernel, *gol_containers(a, b))
    sched.analyze_call(kernel, *gol_containers(b, a))
    cur, nxt = a, b
    for _ in range(GOL_ITERS):
        sched.invoke(kernel, *gol_containers(cur, nxt))
        sched.gather(nxt)
        cur, nxt = nxt, cur
    return _result(node, sched)


def _run_sgemm(spec: GPUSpec) -> dict:
    node = SimNode(spec, SGEMM_GPUS, functional=False)
    sched = Scheduler(node)
    gemm = make_sgemm_routine()
    bmat = Matrix(SGEMM_SIZE, SGEMM_SIZE, np.float32, "B")
    x = Matrix(SGEMM_SIZE, SGEMM_SIZE, np.float32, "X")
    y = Matrix(SGEMM_SIZE, SGEMM_SIZE, np.float32, "Y")
    sched.analyze_call(gemm, *sgemm_containers(x, bmat, y))
    sched.analyze_call(gemm, *sgemm_containers(y, bmat, x))
    cur, nxt = x, y
    for _ in range(SGEMM_ITERS):
        sched.invoke_unmodified(gemm, *sgemm_containers(cur, bmat, nxt))
        sched.gather(nxt)
        cur, nxt = nxt, cur
    return _result(node, sched)


def _result(node: SimNode, sched: Scheduler) -> dict:
    t = sched.wait_all()
    return {
        "sim_time": t,
        "commands": node.engine.commands_executed,
        "working_set": max(
            r["peak"] for r in node.memory_report().values()
        ),
        "evictions": len(node.trace.matching("evict:")),
        "chunk_kernels": len(
            [r for r in node.trace.kernels() if "#chunk" in r.label]
        ),
        "salvage_copies": len(node.trace.matching("salvage:")),
    }


WORKLOADS: dict[str, Callable[[GPUSpec], dict]] = {
    "game_of_life": _run_gol,
    "sgemm_chain": _run_sgemm,
}


def _capped(spec: GPUSpec, capacity: int) -> GPUSpec:
    return dataclasses.replace(spec, global_memory_bytes=int(capacity))


def measure_pressure(spec: GPUSpec = GTX_780) -> dict:
    """Run each workload across the capacity ladder; return the result
    tree. Raises :class:`AssertionError` if a pressured run replays
    non-deterministically."""
    results: dict = {
        "spec": spec.name,
        "factors": list(FACTORS),
        "workloads": {},
    }
    for name, fn in WORKLOADS.items():
        ample = fn(spec)
        ws = ample["working_set"]
        entry: dict = {"working_set": ws, "ample": ample, "runs": {}}
        deterministic_probe: Optional[str] = None
        for factor in FACTORS:
            capped_spec = _capped(spec, max(1, int(ws * factor)))
            try:
                r = fn(capped_spec)
            except CapacityError as e:
                entry["runs"][str(factor)] = {
                    "capacity_error": True,
                    "datum": e.datum,
                    "required": e.required,
                    "capacity": e.capacity,
                }
                continue
            r["slowdown"] = r["sim_time"] / ample["sim_time"]
            entry["runs"][str(factor)] = r
            if factor < 1.0 and deterministic_probe is None:
                deterministic_probe = str(factor)
                replay = fn(capped_spec)
                assert replay["sim_time"] == r["sim_time"], (
                    f"{name} @ {factor}x: degradation is nondeterministic "
                    f"({replay['sim_time']} != {r['sim_time']})"
                )
                assert replay["commands"] == r["commands"], (
                    f"{name} @ {factor}x: command stream is nondeterministic"
                )
        results["workloads"][name] = entry
    return results


def pressure_report(results: dict) -> str:
    """The result tree as an aligned plain-text table."""
    rows = []
    for name, entry in results["workloads"].items():
        first = True
        for factor in results["factors"]:
            r = entry["runs"][str(factor)]
            label = name if first else ""
            first = False
            if r.get("capacity_error"):
                rows.append([
                    label, f"{factor:.1f}x", "-",
                    f"CapacityError({r['datum']})",
                    "-", "-",
                ])
                continue
            rows.append([
                label,
                f"{factor:.1f}x",
                f"{r['sim_time'] * 1e3:.2f} ms",
                f"{r['slowdown']:.2f}x",
                str(r["evictions"]),
                str(r["chunk_kernels"]),
            ])
    title = (
        f"Memory pressure: capacity clamped to a fraction of the in-core "
        f"working set ({results['spec']})"
    )
    return fmt_table(
        title,
        ["workload", "capacity", "sim time", "slowdown", "evicts", "chunks"],
        rows,
    )


def write_pressure_json(results: dict, path: str | pathlib.Path) -> None:
    pathlib.Path(path).write_text(json.dumps(results, indent=2) + "\n")
