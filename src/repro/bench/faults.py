"""Fault-tolerance benchmark: recovery overhead at paper scale (§8).

``python -m repro.bench --faults`` runs the three flagship workloads
(Game of Life, histogram, chained SGEMM — 8K, 4 GPUs, timing-only) in a
checkpointed loop (one host gather per iteration, the pattern that makes
permanent-failure recovery possible) under four fault scenarios:

* ``baseline`` — no faults;
* ``permanent`` — device 2 fails for good at 40% of the baseline runtime;
* ``transient`` — every transfer faults with probability 5% (seeded);
* ``straggler`` — device 0 computes 2x slower and transfers 1.5x slower.

For each scenario the simulated completion time, its overhead ratio over
the baseline, and the fault/recovery counters are reported and written to
``BENCH_faults.json``. The permanent-failure scenario is run twice and
asserted identical (simulated time and executed command count) — fault
handling must be deterministic under a fixed plan.
"""

from __future__ import annotations

import json
import pathlib
from typing import Callable

import numpy as np

from repro.bench.reporting import fmt_table
from repro.core import Grid, Matrix, Scheduler, Vector
from repro.hardware.specs import GPUSpec, GTX_780
from repro.kernels.game_of_life import gol_containers, make_gol_kernel
from repro.kernels.histogram import histogram_containers, make_histogram_kernel
from repro.libs.cublas import make_sgemm_routine, sgemm_containers
from repro.sim.faults import DeviceFailure, FaultPlan, Straggler
from repro.sim.node import SimNode

PAPER_SIZE = 8192
ITERS = 10
NUM_GPUS = 4


def _run_gol(spec: GPUSpec, size: int, iters: int, faults) -> dict:
    node = SimNode(spec, NUM_GPUS, functional=False, faults=faults)
    sched = Scheduler(node)
    kernel = make_gol_kernel()
    a = Matrix(size, size, np.uint8, "gol_a")
    b = Matrix(size, size, np.uint8, "gol_b")
    sched.analyze_call(kernel, *gol_containers(a, b))
    sched.analyze_call(kernel, *gol_containers(b, a))
    cur, nxt = a, b
    for _ in range(iters):
        sched.invoke(kernel, *gol_containers(cur, nxt))
        sched.gather(nxt)  # per-iteration checkpoint
        cur, nxt = nxt, cur
    return _result(node, sched, faults)


def _run_histogram(spec: GPUSpec, size: int, iters: int, faults) -> dict:
    node = SimNode(spec, NUM_GPUS, functional=False, faults=faults)
    sched = Scheduler(node)
    kernel = make_histogram_kernel("maps")
    image = Matrix(size, size, np.uint8, "image")
    hist = Vector(256, np.int32, "hist")
    containers = histogram_containers(image, hist)
    grid = Grid((size, size))
    sched.analyze_call(kernel, *containers, grid=grid)
    for _ in range(iters):
        sched.invoke(kernel, *containers, grid=grid)
        sched.gather(hist)
    return _result(node, sched, faults)


def _run_sgemm(spec: GPUSpec, size: int, iters: int, faults) -> dict:
    node = SimNode(spec, NUM_GPUS, functional=False, faults=faults)
    sched = Scheduler(node)
    gemm = make_sgemm_routine()
    bmat = Matrix(size, size, np.float32, "B")
    x = Matrix(size, size, np.float32, "X")
    y = Matrix(size, size, np.float32, "Y")
    sched.analyze_call(gemm, *sgemm_containers(x, bmat, y))
    sched.analyze_call(gemm, *sgemm_containers(y, bmat, x))
    cur, nxt = x, y
    for _ in range(iters):
        sched.invoke_unmodified(gemm, *sgemm_containers(cur, bmat, nxt))
        sched.gather(nxt)
        cur, nxt = nxt, cur
    return _result(node, sched, faults)


def _result(node: SimNode, sched: Scheduler, faults) -> dict:
    t = sched.wait_all()
    return {
        "sim_time": t,
        "commands": node.engine.commands_executed,
        "alive_devices": list(sched.alive_devices),
        "transfer_faults_fired": (
            faults.transfer_faults_fired if faults else 0
        ),
    }


WORKLOADS: dict[str, Callable[[GPUSpec, int, int, FaultPlan | None], dict]] = {
    "game_of_life": _run_gol,
    "histogram": _run_histogram,
    "sgemm_chain": _run_sgemm,
}


def _scenarios(baseline_time: float) -> dict[str, Callable[[], FaultPlan]]:
    """Fault-plan factories; fresh plans per run (plans hold RNG state)."""
    return {
        "permanent": lambda: FaultPlan(
            device_failures=[DeviceFailure(2, baseline_time * 0.4)]
        ),
        "transient": lambda: FaultPlan(seed=3, transfer_fault_rate=0.05),
        "straggler": lambda: FaultPlan(
            stragglers=[
                Straggler(0, compute_factor=2.0, bandwidth_factor=1.5)
            ]
        ),
    }


def measure_faults(
    spec: GPUSpec = GTX_780,
    size: int = PAPER_SIZE,
    iters: int = ITERS,
) -> dict:
    """Run every workload under every fault scenario; return the result
    tree. Raises :class:`AssertionError` if the permanent-failure scenario
    replays non-deterministically."""
    results: dict = {
        "spec": spec.name,
        "num_gpus": NUM_GPUS,
        "size": size,
        "iters": iters,
        "workloads": {},
    }
    for name, fn in WORKLOADS.items():
        baseline = fn(spec, size, iters, None)
        entry = {"baseline": baseline}
        for scen, make_plan in _scenarios(baseline["sim_time"]).items():
            r = fn(spec, size, iters, make_plan())
            r["overhead"] = r["sim_time"] / baseline["sim_time"]
            entry[scen] = r
        replay = fn(spec, size, iters, _scenarios(
            baseline["sim_time"])["permanent"]())
        assert replay["sim_time"] == entry["permanent"]["sim_time"], (
            f"{name}: permanent-failure recovery is nondeterministic "
            f"({replay['sim_time']} != {entry['permanent']['sim_time']})"
        )
        assert replay["commands"] == entry["permanent"]["commands"], (
            f"{name}: recovery command stream is nondeterministic"
        )
        results["workloads"][name] = entry
    return results


def faults_report(results: dict) -> str:
    """The result tree as an aligned plain-text table."""
    rows = []
    for name, entry in results["workloads"].items():
        base = entry["baseline"]["sim_time"]
        rows.append([name, "baseline", f"{base * 1e3:.2f} ms", "1.00x",
                     "4", "0"])
        for scen in ("permanent", "transient", "straggler"):
            r = entry[scen]
            rows.append([
                "", scen,
                f"{r['sim_time'] * 1e3:.2f} ms",
                f"{r['overhead']:.2f}x",
                str(len(r["alive_devices"])),
                str(r["transfer_faults_fired"]),
            ])
    title = (
        f"Fault-tolerance overhead: {results['iters']} checkpointed "
        f"iterations, {results['size']}^2, {results['num_gpus']}x "
        f"{results['spec']}"
    )
    return fmt_table(
        title,
        ["workload", "scenario", "sim time", "overhead", "alive", "faults"],
        rows,
    )


def write_faults_json(results: dict, path: str | pathlib.Path) -> None:
    pathlib.Path(path).write_text(json.dumps(results, indent=2) + "\n")
