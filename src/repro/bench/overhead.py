"""Host-path overhead benchmark: plan cache on vs. off (§4.3).

The paper amortizes host-side scheduling work across the repeated
invocations of iterative workloads ("the segmentation phase is performed
once ... subsequent invocations reuse the analysis"). This benchmark
measures that amortization directly: it submits ``ITERS`` repeated
invocations of each flagship workload (Game of Life, histogram, chained
SGEMM — all at the paper's 8K scale) on a timing-only node and times the
*host* wall-clock of the submission loop with the invocation plan cache
enabled vs. disabled.

Disabling the cache (``Scheduler(plan_cache=False)``) turns off every
cross-invocation amortization — plan replay, copy-decision memoization
and the location monitor's transition memoization — so the baseline is an
honest "recompute everything per invocation" scheduler.

Both modes must produce identical simulated timelines and identical
command streams; the benchmark asserts this (``sim_time`` and
``commands`` equality) rather than trusting it.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Callable

import numpy as np

from repro.bench.reporting import fmt_table
from repro.core import Grid, Matrix, Scheduler, Vector
from repro.hardware.specs import GPUSpec, GTX_780
from repro.kernels.game_of_life import gol_containers, make_gol_kernel
from repro.kernels.histogram import histogram_containers, make_histogram_kernel
from repro.libs.cublas import make_sgemm_routine, sgemm_containers
from repro.sim.node import SimNode

#: Paper scale (§5: "8K square") and invocation count per measurement.
PAPER_SIZE = 8192
ITERS = 100
#: Wall-clock measurements repeat this many times; the minimum is reported
#: (standard practice for host-overhead microbenchmarks — the minimum is
#: the least noise-contaminated sample).
REPEATS = 3
NUM_GPUS = 4


def _run_gol(plan_cache: bool, spec: GPUSpec, size: int, iters: int) -> dict:
    node = SimNode(spec, NUM_GPUS, functional=False)
    sched = Scheduler(node, plan_cache=plan_cache)
    kernel = make_gol_kernel()
    a = Matrix(size, size, np.uint8, "gol_a")
    b = Matrix(size, size, np.uint8, "gol_b")
    sched.analyze_call(kernel, *gol_containers(a, b))
    sched.analyze_call(kernel, *gol_containers(b, a))
    sched.invoke(kernel, *gol_containers(a, b))  # warm-up distribution
    sched.wait_all()
    cur, nxt = b, a
    t0 = time.perf_counter()
    for _ in range(iters):
        sched.invoke(kernel, *gol_containers(cur, nxt))
        cur, nxt = nxt, cur
    t1 = time.perf_counter()
    sched.wait_all()
    t2 = time.perf_counter()
    return _result(node, sched, t1 - t0, t2 - t1)


def _run_histogram(plan_cache: bool, spec: GPUSpec, size: int, iters: int) -> dict:
    node = SimNode(spec, NUM_GPUS, functional=False)
    sched = Scheduler(node, plan_cache=plan_cache)
    kernel = make_histogram_kernel("maps")
    image = Matrix(size, size, np.uint8, "image")
    hist = Vector(256, np.int32, "hist")
    containers = histogram_containers(image, hist)
    grid = Grid((size, size))
    sched.analyze_call(kernel, *containers, grid=grid)
    sched.invoke(kernel, *containers, grid=grid)  # warm-up distribution
    sched.wait_all()
    t0 = time.perf_counter()
    for _ in range(iters):
        sched.invoke(kernel, *containers, grid=grid)
    t1 = time.perf_counter()
    sched.gather(hist)
    sched.wait_all()
    t2 = time.perf_counter()
    return _result(node, sched, t1 - t0, t2 - t1)


def _run_sgemm(plan_cache: bool, spec: GPUSpec, size: int, iters: int) -> dict:
    node = SimNode(spec, NUM_GPUS, functional=False)
    sched = Scheduler(node, plan_cache=plan_cache)
    gemm = make_sgemm_routine()
    bmat = Matrix(size, size, np.float32, "B")
    x = Matrix(size, size, np.float32, "X")
    y = Matrix(size, size, np.float32, "Y")
    sched.analyze_call(gemm, *sgemm_containers(x, bmat, y))
    sched.analyze_call(gemm, *sgemm_containers(y, bmat, x))
    sched.invoke_unmodified(gemm, *sgemm_containers(x, bmat, y))  # warm-up
    sched.wait_all()
    cur, nxt = y, x
    t0 = time.perf_counter()
    for _ in range(iters):
        sched.invoke_unmodified(gemm, *sgemm_containers(cur, bmat, nxt))
        cur, nxt = nxt, cur
    t1 = time.perf_counter()
    sched.wait_all()
    t2 = time.perf_counter()
    return _result(node, sched, t1 - t0, t2 - t1)


def _result(node: SimNode, sched: Scheduler, submit: float, drain: float) -> dict:
    return {
        "submit_s": submit,
        "drain_s": drain,
        "sim_time": node.time,
        "commands": node.engine.commands_executed,
        "plan_cache": sched.plans.stats,
        "transitions": {
            "hits": sched.monitor.transition_hits,
            "misses": sched.monitor.transition_misses,
        },
    }


WORKLOADS: dict[str, Callable[[bool, GPUSpec, int, int], dict]] = {
    "game_of_life": _run_gol,
    "histogram": _run_histogram,
    "sgemm_chain": _run_sgemm,
}


def _best_of(fn, plan_cache, spec, size, iters, repeats):
    """Repeat a workload run, keeping the lowest submit wall-clock."""
    best = None
    for _ in range(repeats):
        r = fn(plan_cache, spec, size, iters)
        if best is None or r["submit_s"] < best["submit_s"]:
            best = r
    return best


def measure_overhead(
    spec: GPUSpec = GTX_780,
    size: int = PAPER_SIZE,
    iters: int = ITERS,
    repeats: int = REPEATS,
) -> dict:
    """Run every workload cached and uncached; return the result tree.

    Raises :class:`AssertionError` if a cached run's simulated time or
    command count diverges from its uncached baseline — plan replay must
    be a pure wall-clock optimization.
    """
    results: dict = {
        "spec": spec.name,
        "num_gpus": NUM_GPUS,
        "size": size,
        "iters": iters,
        "repeats": repeats,
        "workloads": {},
    }
    for name, fn in WORKLOADS.items():
        uncached = _best_of(fn, False, spec, size, iters, repeats)
        cached = _best_of(fn, True, spec, size, iters, repeats)
        assert cached["sim_time"] == uncached["sim_time"], (
            f"{name}: plan cache changed simulated time "
            f"({cached['sim_time']} != {uncached['sim_time']})"
        )
        assert cached["commands"] == uncached["commands"], (
            f"{name}: plan cache changed the command count "
            f"({cached['commands']} != {uncached['commands']})"
        )
        results["workloads"][name] = {
            "uncached": uncached,
            "cached": cached,
            "submit_speedup": uncached["submit_s"] / cached["submit_s"],
            "total_speedup": (uncached["submit_s"] + uncached["drain_s"])
            / (cached["submit_s"] + cached["drain_s"]),
        }
    return results


def overhead_report(results: dict) -> str:
    """The result tree as an aligned plain-text table."""
    rows = []
    for name, r in results["workloads"].items():
        rows.append(
            [
                name,
                f"{r['uncached']['submit_s'] * 1e3:.1f} ms",
                f"{r['cached']['submit_s'] * 1e3:.1f} ms",
                f"{r['submit_speedup']:.2f}x",
                f"{r['total_speedup']:.2f}x",
                str(r["cached"]["commands"]),
            ]
        )
    title = (
        f"Host-path overhead: {results['iters']} invocations, "
        f"{results['size']}^2, {results['num_gpus']}x {results['spec']} "
        "(plan cache off vs on)"
    )
    return fmt_table(
        title,
        ["workload", "uncached", "cached", "speedup", "total", "commands"],
        rows,
    )


def write_overhead_json(results: dict, path: str | pathlib.Path) -> None:
    pathlib.Path(path).write_text(json.dumps(results, indent=2) + "\n")
