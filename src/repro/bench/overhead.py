"""Host-path overhead benchmark: plan cache on vs. off (§4.3).

The paper amortizes host-side scheduling work across the repeated
invocations of iterative workloads ("the segmentation phase is performed
once ... subsequent invocations reuse the analysis"). This benchmark
measures that amortization directly: it submits ``ITERS`` repeated
invocations of each flagship workload (Game of Life, histogram, chained
SGEMM — all at the paper's 8K scale) on a timing-only node and times the
*host* wall-clock of the submission loop with the invocation plan cache
enabled vs. disabled.

Disabling the cache (``Scheduler(plan_cache=False)``) turns off every
cross-invocation amortization — plan replay, copy-decision memoization
and the location monitor's transition memoization — so the baseline is an
honest "recompute everything per invocation" scheduler.

Both modes must produce identical simulated timelines and identical
command streams; the benchmark asserts this (``sim_time`` and
``commands`` equality) rather than trusting it.

On top of the cached scheduler, a third rung measures iteration-graph
replay (DESIGN.md §12): one steady-state period of each workload is
captured with ``sched.capture()`` and the remaining iterations are
replayed with ``graph.launch(n)`` as a single macro-command. Because the
capture boundaries insert drain barriers that an uninterrupted eager loop
would not have, the graph run is checked bit-for-bit against a "twin" —
an eager cached run with ``wait_all`` calls at exactly the capture/launch
points — rather than against the plain cached run.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Callable

import numpy as np

from repro.bench.reporting import fmt_table
from repro.core import Grid, Matrix, Scheduler, Vector
from repro.hardware.specs import GPUSpec, GTX_780
from repro.kernels.game_of_life import gol_containers, make_gol_kernel
from repro.kernels.histogram import histogram_containers, make_histogram_kernel
from repro.libs.cublas import make_sgemm_routine, sgemm_containers
from repro.sim.node import SimNode

#: Paper scale (§5: "8K square") and invocation count per measurement.
PAPER_SIZE = 8192
ITERS = 100
#: Wall-clock measurements repeat this many times; the minimum is reported
#: (standard practice for host-overhead microbenchmarks — the minimum is
#: the least noise-contaminated sample).
REPEATS = 3
NUM_GPUS = 4

#: Measurement modes, cheapest host path last. ``twin`` is the eager
#: bit-identity reference for ``graph`` (same wait_all sync structure).
MODES = ("uncached", "cached", "twin", "graph")


def _run_gol(mode: str, spec: GPUSpec, size: int, iters: int) -> dict:
    node = SimNode(spec, NUM_GPUS, functional=False)
    sched = Scheduler(node, plan_cache=mode != "uncached")
    kernel = make_gol_kernel()
    a = Matrix(size, size, np.uint8, "gol_a")
    b = Matrix(size, size, np.uint8, "gol_b")
    sched.analyze_call(kernel, *gol_containers(a, b))
    sched.analyze_call(kernel, *gol_containers(b, a))
    sched.invoke(kernel, *gol_containers(a, b))  # warm-up distribution
    sched.wait_all()
    graph = None
    # Tick 0 still distributes the second board; ticks 1-2 are the first
    # steady-state ping-pong period, so that is what graph mode captures.
    periods, extra = divmod(iters - 3, 2)
    t0 = time.perf_counter()
    if mode == "graph":
        sched.invoke(kernel, *gol_containers(b, a))
        with sched.capture() as graph:
            sched.invoke(kernel, *gol_containers(a, b))
            sched.invoke(kernel, *gol_containers(b, a))
        if periods:
            graph.launch(periods)
        for _ in range(extra):
            sched.invoke(kernel, *gol_containers(a, b))
    elif mode == "twin":
        sched.invoke(kernel, *gol_containers(b, a))
        sched.wait_all()  # begin_batch drain
        sched.invoke(kernel, *gol_containers(a, b))
        sched.invoke(kernel, *gol_containers(b, a))
        sched.wait_all()  # end_batch drain
        cur, nxt = a, b
        for _ in range(2 * periods):
            sched.invoke(kernel, *gol_containers(cur, nxt))
            cur, nxt = nxt, cur
        if periods:
            sched.wait_all()  # launch drain
        for _ in range(extra):
            sched.invoke(kernel, *gol_containers(a, b))
    else:
        cur, nxt = b, a
        for _ in range(iters):
            sched.invoke(kernel, *gol_containers(cur, nxt))
            cur, nxt = nxt, cur
    t1 = time.perf_counter()
    sched.wait_all()
    t2 = time.perf_counter()
    return _result(node, sched, t1 - t0, t2 - t1, graph)


def _run_histogram(mode: str, spec: GPUSpec, size: int, iters: int) -> dict:
    node = SimNode(spec, NUM_GPUS, functional=False)
    sched = Scheduler(node, plan_cache=mode != "uncached")
    kernel = make_histogram_kernel("maps")
    image = Matrix(size, size, np.uint8, "image")
    hist = Vector(256, np.int32, "hist")
    containers = histogram_containers(image, hist)
    grid = Grid((size, size))
    sched.analyze_call(kernel, *containers, grid=grid)
    sched.invoke(kernel, *containers, grid=grid)  # warm-up distribution
    sched.wait_all()
    graph = None
    t0 = time.perf_counter()
    if mode == "graph":
        # Every invocation is identical (no ping-pong): the period is a
        # single invoke.
        with sched.capture() as graph:
            sched.invoke(kernel, *containers, grid=grid)
        if iters > 1:
            graph.launch(iters - 1)
    elif mode == "twin":
        sched.wait_all()  # begin_batch drain (no-op here)
        sched.invoke(kernel, *containers, grid=grid)
        sched.wait_all()  # end_batch drain
        for _ in range(iters - 1):
            sched.invoke(kernel, *containers, grid=grid)
        if iters > 1:
            sched.wait_all()  # launch drain
    else:
        for _ in range(iters):
            sched.invoke(kernel, *containers, grid=grid)
    t1 = time.perf_counter()
    sched.gather(hist)
    sched.wait_all()
    t2 = time.perf_counter()
    return _result(node, sched, t1 - t0, t2 - t1, graph)


def _run_sgemm(mode: str, spec: GPUSpec, size: int, iters: int) -> dict:
    node = SimNode(spec, NUM_GPUS, functional=False)
    sched = Scheduler(node, plan_cache=mode != "uncached")
    gemm = make_sgemm_routine()
    bmat = Matrix(size, size, np.float32, "B")
    x = Matrix(size, size, np.float32, "X")
    y = Matrix(size, size, np.float32, "Y")
    sched.analyze_call(gemm, *sgemm_containers(x, bmat, y))
    sched.analyze_call(gemm, *sgemm_containers(y, bmat, x))
    sched.invoke_unmodified(gemm, *sgemm_containers(x, bmat, y))  # warm-up
    sched.wait_all()
    graph = None
    # Multiplication 0 still distributes the Y stripes; 1-2 are the first
    # steady-state ping-pong period.
    periods, extra = divmod(iters - 3, 2)
    t0 = time.perf_counter()
    if mode == "graph":
        sched.invoke_unmodified(gemm, *sgemm_containers(y, bmat, x))
        with sched.capture() as graph:
            sched.invoke_unmodified(gemm, *sgemm_containers(x, bmat, y))
            sched.invoke_unmodified(gemm, *sgemm_containers(y, bmat, x))
        if periods:
            graph.launch(periods)
        for _ in range(extra):
            sched.invoke_unmodified(gemm, *sgemm_containers(x, bmat, y))
    elif mode == "twin":
        sched.invoke_unmodified(gemm, *sgemm_containers(y, bmat, x))
        sched.wait_all()  # begin_batch drain
        sched.invoke_unmodified(gemm, *sgemm_containers(x, bmat, y))
        sched.invoke_unmodified(gemm, *sgemm_containers(y, bmat, x))
        sched.wait_all()  # end_batch drain
        cur, nxt = x, y
        for _ in range(2 * periods):
            sched.invoke_unmodified(gemm, *sgemm_containers(cur, bmat, nxt))
            cur, nxt = nxt, cur
        if periods:
            sched.wait_all()  # launch drain
        for _ in range(extra):
            sched.invoke_unmodified(gemm, *sgemm_containers(x, bmat, y))
    else:
        cur, nxt = y, x
        for _ in range(iters):
            sched.invoke_unmodified(gemm, *sgemm_containers(cur, bmat, nxt))
            cur, nxt = nxt, cur
    t1 = time.perf_counter()
    sched.wait_all()
    t2 = time.perf_counter()
    return _result(node, sched, t1 - t0, t2 - t1, graph)


def _result(
    node: SimNode,
    sched: Scheduler,
    submit: float,
    drain: float,
    graph=None,
) -> dict:
    out = {
        "submit_s": submit,
        "drain_s": drain,
        "sim_time": node.time,
        "commands": node.engine.commands_executed,
        "plan_cache": sched.plans.stats,
        "transitions": {
            "hits": sched.monitor.transition_hits,
            "misses": sched.monitor.transition_misses,
        },
    }
    if graph is not None:
        out["graph"] = {
            "replayable": graph.replayable,
            "reason": graph.reason,
            "launches": graph.launches,
            "fast_launches": graph.fast_launches,
            "replayed_laps": graph.replayed_laps,
        }
    return out


WORKLOADS: dict[str, Callable[[str, GPUSpec, int, int], dict]] = {
    "game_of_life": _run_gol,
    "histogram": _run_histogram,
    "sgemm_chain": _run_sgemm,
}


def _total(r: dict) -> float:
    return r["submit_s"] + r["drain_s"]


def _best_of(fn, mode, spec, size, iters, repeats, key=None):
    """Repeat a workload run, keeping the lowest wall-clock under ``key``
    (default: submission time)."""
    key = key or (lambda r: r["submit_s"])
    best = None
    for _ in range(repeats):
        r = fn(mode, spec, size, iters)
        if best is None or key(r) < key(best):
            best = r
    return best


def measure_overhead(
    spec: GPUSpec = GTX_780,
    size: int = PAPER_SIZE,
    iters: int = ITERS,
    repeats: int = REPEATS,
    graph_floor: float | None = None,
) -> dict:
    """Run every workload uncached / cached / graph-replayed; return the
    result tree.

    Raises :class:`AssertionError` if a cached run's simulated time or
    command count diverges from its uncached baseline, or a graph run's
    from its eager twin — plan replay and graph replay must both be pure
    wall-clock optimizations. With ``graph_floor`` set, additionally
    asserts that every workload's graph-replay speedup over the cached
    scheduler (total wall-clock, submit + drain) reaches the floor.
    """
    if iters < 5:
        raise ValueError("need iters >= 5 to capture a steady-state period")
    results: dict = {
        "spec": spec.name,
        "num_gpus": NUM_GPUS,
        "size": size,
        "iters": iters,
        "repeats": repeats,
        "graph_floor": graph_floor,
        "workloads": {},
    }
    for name, fn in WORKLOADS.items():
        uncached = _best_of(fn, "uncached", spec, size, iters, repeats)
        cached = _best_of(fn, "cached", spec, size, iters, repeats)
        # The twin is only the graph's bit-identity reference; one run.
        twin = fn("twin", spec, size, iters)
        # Graph submission and drain interleave inside launch(); rank
        # repeats by total wall-clock.
        graph = _best_of(
            fn, "graph", spec, size, iters, repeats, key=_total
        )
        assert cached["sim_time"] == uncached["sim_time"], (
            f"{name}: plan cache changed simulated time "
            f"({cached['sim_time']} != {uncached['sim_time']})"
        )
        assert cached["commands"] == uncached["commands"], (
            f"{name}: plan cache changed the command count "
            f"({cached['commands']} != {uncached['commands']})"
        )
        assert graph["graph"]["replayable"], (
            f"{name}: capture not replayable: {graph['graph']['reason']}"
        )
        assert graph["graph"]["fast_launches"] == graph["graph"]["launches"], (
            f"{name}: graph launch fell back to eager replay"
        )
        assert graph["plan_cache"]["graph_hits"] > 0, (
            f"{name}: graph replay did not count any graph_hits"
        )
        assert graph["sim_time"] == twin["sim_time"], (
            f"{name}: graph replay changed simulated time "
            f"({graph['sim_time']} != {twin['sim_time']})"
        )
        assert graph["commands"] == twin["commands"], (
            f"{name}: graph replay changed the command count "
            f"({graph['commands']} != {twin['commands']})"
        )
        replay_speedup = _total(cached) / _total(graph)
        if graph_floor is not None:
            assert replay_speedup >= graph_floor, (
                f"{name}: graph replay speedup {replay_speedup:.2f}x "
                f"under the floor {graph_floor:.2f}x"
            )
        results["workloads"][name] = {
            "uncached": uncached,
            "cached": cached,
            "twin": twin,
            "graph": graph,
            "submit_speedup": uncached["submit_s"] / cached["submit_s"],
            "total_speedup": _total(uncached) / _total(cached),
            "replay_speedup": replay_speedup,
        }
    return results


def overhead_report(results: dict) -> str:
    """The result tree as an aligned plain-text table."""
    rows = []
    for name, r in results["workloads"].items():
        rows.append(
            [
                name,
                f"{r['uncached']['submit_s'] * 1e3:.1f} ms",
                f"{r['cached']['submit_s'] * 1e3:.1f} ms",
                f"{r['submit_speedup']:.2f}x",
                f"{r['total_speedup']:.2f}x",
                f"{_total(r['graph']) * 1e3:.1f} ms",
                f"{r['replay_speedup']:.2f}x",
                str(r["cached"]["commands"]),
            ]
        )
    title = (
        f"Host-path overhead: {results['iters']} invocations, "
        f"{results['size']}^2, {results['num_gpus']}x {results['spec']} "
        "(plan cache off vs on vs iteration-graph replay)"
    )
    return fmt_table(
        title,
        [
            "workload",
            "uncached",
            "cached",
            "speedup",
            "total",
            "iteration_graph",
            "replay",
            "commands",
        ],
        rows,
    )


def write_overhead_json(results: dict, path: str | pathlib.Path) -> None:
    pathlib.Path(path).write_text(json.dumps(results, indent=2) + "\n")
