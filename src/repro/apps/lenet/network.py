"""LeNet parameters and a pure-numpy reference implementation (§6.1).

The reference forward/backward pass is the single-source-of-truth the
MAPS-Multi trainer's functional results are validated against. The
architecture is the Caffe-style LeNet of the paper's Fig. 10:
conv(20@5x5) → pool → conv(50@5x5) → pool → fc(500)+ReLU → fc(10) →
softmax cross-entropy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.libs.cudnn import (
    conv2d_backward_data,
    conv2d_backward_filter,
    conv2d_forward,
    maxpool2x2_backward,
    maxpool2x2_forward,
)

#: Layer dimensions (input 1x28x28).
CONV1_FILTERS, CONV2_FILTERS = 20, 50
KERNEL = 5
FLAT = 50 * 4 * 4  # 800
FC1, CLASSES = 500, 10

PARAM_NAMES = ("W1", "b1", "W2", "b2", "W3", "b3", "W4", "b4")


@dataclass
class LeNetParams:
    """Host-side parameter set."""

    W1: np.ndarray
    b1: np.ndarray
    W2: np.ndarray
    b2: np.ndarray
    W3: np.ndarray
    b3: np.ndarray
    W4: np.ndarray
    b4: np.ndarray

    @staticmethod
    def initialize(seed: int = 0) -> "LeNetParams":
        rng = np.random.default_rng(seed)

        def xavier(*shape):
            fan_in = int(np.prod(shape[1:]))
            return (
                rng.standard_normal(shape) / np.sqrt(fan_in)
            ).astype(np.float32)

        return LeNetParams(
            W1=xavier(CONV1_FILTERS, 1, KERNEL, KERNEL),
            b1=np.zeros(CONV1_FILTERS, np.float32),
            W2=xavier(CONV2_FILTERS, CONV1_FILTERS, KERNEL, KERNEL),
            b2=np.zeros(CONV2_FILTERS, np.float32),
            W3=xavier(FC1, FLAT),
            b3=np.zeros(FC1, np.float32),
            W4=xavier(CLASSES, FC1),
            b4=np.zeros(CLASSES, np.float32),
        )

    def items(self):
        return [(n, getattr(self, n)) for n in PARAM_NAMES]

    def copy(self) -> "LeNetParams":
        return LeNetParams(**{n: v.copy() for n, v in self.items()})

    def count(self) -> int:
        """Total parameter count (~431K for LeNet)."""
        return sum(v.size for _, v in self.items())


def softmax(logits: np.ndarray) -> np.ndarray:
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


@dataclass
class ForwardState:
    """Intermediate activations kept for the backward pass."""

    x0: np.ndarray
    a1: np.ndarray
    p1: np.ndarray
    m1: np.ndarray
    a2: np.ndarray
    p2: np.ndarray
    m2: np.ndarray
    f: np.ndarray
    h: np.ndarray
    hr: np.ndarray
    logits: np.ndarray


def reference_forward(p: LeNetParams, x0: np.ndarray) -> ForwardState:
    a1 = conv2d_forward(x0, p.W1) + p.b1[None, :, None, None]
    p1, m1 = maxpool2x2_forward(a1)
    a2 = conv2d_forward(p1, p.W2) + p.b2[None, :, None, None]
    p2, m2 = maxpool2x2_forward(a2)
    f = p2.reshape(p2.shape[0], FLAT)
    h = f @ p.W3.T + p.b3
    hr = np.maximum(h, 0)
    logits = hr @ p.W4.T + p.b4
    return ForwardState(x0, a1, p1, m1, a2, p2, m2, f, h, hr, logits)


def reference_loss(logits: np.ndarray, labels: np.ndarray) -> float:
    sm = softmax(logits)
    n = labels.shape[0]
    return float(-np.log(sm[np.arange(n), labels] + 1e-12).mean())


def reference_backward(
    p: LeNetParams, s: ForwardState, labels: np.ndarray
) -> dict[str, np.ndarray]:
    n = labels.shape[0]
    dlogits = softmax(s.logits)
    dlogits[np.arange(n), labels] -= 1.0
    dlogits /= n

    grads: dict[str, np.ndarray] = {}
    grads["W4"] = dlogits.T @ s.hr
    grads["b4"] = dlogits.sum(axis=0)
    dhr = dlogits @ p.W4
    dh = dhr * (s.h > 0)
    grads["W3"] = dh.T @ s.f
    grads["b3"] = dh.sum(axis=0)
    df = dh @ p.W3
    dp2 = df.reshape(s.p2.shape)
    da2 = maxpool2x2_backward(dp2, s.m2, s.a2.shape)
    grads["W2"] = conv2d_backward_filter(s.p1, da2)
    grads["b2"] = da2.sum(axis=(0, 2, 3))
    dp1 = conv2d_backward_data(da2, p.W2)
    da1 = maxpool2x2_backward(dp1, s.m1, s.a1.shape)
    grads["W1"] = conv2d_backward_filter(s.x0, da1)
    grads["b1"] = da1.sum(axis=(0, 2, 3))
    return grads


def reference_step(
    p: LeNetParams, x0: np.ndarray, labels: np.ndarray, lr: float
) -> float:
    """One SGD step in place; returns the pre-update loss."""
    s = reference_forward(p, x0)
    loss = reference_loss(s.logits, labels)
    grads = reference_backward(p, s, labels)
    for name, g in grads.items():
        getattr(p, name)[...] -= lr * g.astype(np.float32)
    return loss
