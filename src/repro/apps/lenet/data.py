"""Synthetic MNIST-like dataset (§6.1 substitution).

The paper trains LeNet on MNIST (70,000 handwritten 28x28 digits). The
evaluation metric is training *throughput* (images/second) and multi-GPU
scaling — not accuracy — so any deterministic stream of 28x28 grayscale
images with 10 classes exercises identical code paths. This generator
renders crude procedural digit glyphs on a 28x28 canvas with random
shifts and pixel noise; a LeNet trained on it reaches high training
accuracy quickly, which the tests use as an end-to-end sanity check.
"""

from __future__ import annotations

import numpy as np

_GLYPHS = [
    # 5x7 dot-matrix digits 0-9.
    ["01110", "10001", "10011", "10101", "11001", "10001", "01110"],
    ["00100", "01100", "00100", "00100", "00100", "00100", "01110"],
    ["01110", "10001", "00001", "00110", "01000", "10000", "11111"],
    ["01110", "10001", "00001", "00110", "00001", "10001", "01110"],
    ["00010", "00110", "01010", "10010", "11111", "00010", "00010"],
    ["11111", "10000", "11110", "00001", "00001", "10001", "01110"],
    ["01110", "10000", "11110", "10001", "10001", "10001", "01110"],
    ["11111", "00001", "00010", "00100", "01000", "01000", "01000"],
    ["01110", "10001", "01110", "10001", "10001", "10001", "01110"],
    ["01110", "10001", "10001", "01111", "00001", "00001", "01110"],
]


def _render(digit: int, scale: int = 3) -> np.ndarray:
    glyph = _GLYPHS[digit]
    bitmap = np.array(
        [[int(c) for c in row] for row in glyph], dtype=np.float32
    )
    return np.kron(bitmap, np.ones((scale, scale), np.float32))


def synthetic_mnist(
    n: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``n`` MNIST-like samples.

    Returns:
        images: float32 array of shape ``(n, 1, 28, 28)`` in [0, 1].
        labels: int32 array of shape ``(n,)`` with values 0-9.
    """
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 10, size=n).astype(np.int32)
    images = np.zeros((n, 1, 28, 28), dtype=np.float32)
    glyphs = [_render(d) for d in range(10)]
    gh, gw = glyphs[0].shape
    for i, d in enumerate(labels):
        dy = rng.integers(0, 28 - gh + 1)
        dx = rng.integers(0, 28 - gw + 1)
        images[i, 0, dy : dy + gh, dx : dx + gw] = glyphs[d]
    images += rng.normal(0.0, 0.05, size=images.shape).astype(np.float32)
    np.clip(images, 0.0, 1.0, out=images)
    return images, labels
