"""Multi-GPU LeNet training over MAPS-Multi (§6.1, Fig. 10/11).

Two concurrency schemes, selected by ``mode``:

* ``"data"`` — pure data parallelism: every task is batch-partitioned;
  weight gradients are ``ReductiveStatic`` outputs whose aggregation and
  redistribution the framework infers (the per-iteration parameter
  exchange the paper describes as data parallelism's scaling limit).
* ``"hybrid"`` — Krizhevsky-style hybrid data/model parallelism: the
  convolution/pooling part stays data-parallel while the first (large)
  fully-connected layer is model-parallel — its weights live row-striped
  on the devices, never exchanged; instead the (smaller) activations are
  exchanged, automatically, because the model-parallel GEMM declares
  ``Block2DTransposed`` (full) input over batch-striped activations.

Switching schemes changes only which containers the fc1 tasks declare —
the paper's headline usability result (§6.1: "switching between data
parallelism and the hybrid approach in MAPS-Multi requires only a single
access pattern modification").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.lenet import tasks as T
from repro.apps.lenet.network import (
    CLASSES,
    CONV1_FILTERS,
    CONV2_FILTERS,
    FC1,
    FLAT,
    LeNetParams,
    PARAM_NAMES,
)
from repro.core import Datum, Grid, Scheduler
from repro.patterns import (
    Block2D,
    Block2DTransposed,
    BlockColumnStriped,
    BlockStriped,
    InjectiveColumnStriped,
    InjectiveStriped,
    ReductiveStatic,
    Replicated,
)
from repro.sim.node import SimNode


class MapsLeNetTrainer:
    """LeNet trainer on a simulated multi-GPU node.

    Args:
        node: The simulated node (functional for correctness runs,
            timing-only for throughput measurements).
        params: Initial host-side parameters (bound in functional mode).
        batch: Global batch size (the paper uses 2048).
        mode: ``"data"`` or ``"hybrid"``.
        lr: SGD learning rate.
    """

    def __init__(
        self,
        node: SimNode,
        params: LeNetParams,
        batch: int,
        mode: str = "data",
        lr: float = 0.05,
        sanitize: bool = False,
    ):
        if mode not in ("data", "hybrid"):
            raise ValueError(f"unknown parallelism mode {mode!r}")
        self.node = node
        self.sched = Scheduler(node, sanitize=sanitize)
        self.params = params
        self.batch = batch
        self.mode = mode
        self.lr = lr
        self._build_datums()
        self._build_kernels()
        self._analyze_all()

    # -- datum construction ------------------------------------------------------
    def _datum(self, name: str, shape, dtype=np.float32) -> Datum:
        d = Datum(shape, dtype, name)
        if self.node.functional:
            d.bind(np.zeros(shape, dtype))
        return d

    def _build_datums(self) -> None:
        b = self.batch
        f = self.node.functional
        self.x0 = self._datum("x0", (b, 1, 28, 28))
        self.labels = self._datum("labels", (b,), np.int32)
        self.a1 = self._datum("a1", (b, CONV1_FILTERS, 24, 24))
        self.p1 = self._datum("p1", (b, CONV1_FILTERS, 12, 12))
        self.m1 = self._datum("m1", (b, CONV1_FILTERS, 12, 12), np.int8)
        self.a2 = self._datum("a2", (b, CONV2_FILTERS, 8, 8))
        self.p2 = self._datum("p2", (b, CONV2_FILTERS, 4, 4))
        self.m2 = self._datum("m2", (b, CONV2_FILTERS, 4, 4), np.int8)
        self.f = self._datum("f", (b, FLAT))
        self.h = self._datum("h", (b, FC1))
        self.hr = self._datum("hr", (b, FC1))
        self.logits = self._datum("logits", (b, CLASSES))
        self.dlogits = self._datum("dlogits", (b, CLASSES))
        self.loss = self._datum("loss", (1,))
        # Backward activations.
        self.dhr = self._datum("dhr", (b, FC1))
        self.dh = self._datum("dh", (b, FC1))
        self.df = self._datum("df", (b, FLAT))
        self.dp2 = self._datum("dp2", (b, CONV2_FILTERS, 4, 4))
        self.da2 = self._datum("da2", (b, CONV2_FILTERS, 8, 8))
        self.dp1 = self._datum("dp1", (b, CONV1_FILTERS, 12, 12))
        self.da1 = self._datum("da1", (b, CONV1_FILTERS, 24, 24))
        # Hybrid-mode transposed activations.
        if self.mode == "hybrid":
            self.fT = self._datum("fT", (FLAT, b))
            self.hT = self._datum("hT", (FC1, b))
            self.hrT = self._datum("hrT", (FC1, b))
            self.dhrT = self._datum("dhrT", (FC1, b))
            self.dhT = self._datum("dhT", (FC1, b))
            self.dfT = self._datum("dfT", (FLAT, b))
        # Parameters and gradients.
        self.p_datums: dict[str, Datum] = {}
        self.g_datums: dict[str, Datum] = {}
        for name, arr in self.params.items():
            pd = Datum(arr.shape, np.float32, name)
            if f:
                pd.bind(arr)
            gd = self._datum("d" + name, arr.shape)
            self.p_datums[name] = pd
            self.g_datums[name] = gd

    def _build_kernels(self) -> None:
        self.k_conv_fwd = T.make_conv_fwd()
        self.k_conv_bwd_data = T.make_conv_bwd_data()
        self.k_conv_bwd_filter = T.make_conv_bwd_filter()
        self.k_pool_fwd = T.make_pool_fwd()
        self.k_pool_bwd = T.make_pool_bwd()
        self.k_reshape = T.make_reshape()
        self.k_fc_fwd = T.make_fc_fwd()
        self.k_fc_bwd_data = T.make_fc_bwd_data()
        self.k_fc_bwd_filter = T.make_fc_bwd_filter()
        self.k_softmax = T.make_softmax_loss()
        self.k_update = T.make_sgd_update()
        if self.mode == "hybrid":
            self.k_transpose = T.make_transpose()
            self.k_untranspose = T.make_untranspose()
            self.k_mp_fc_fwd = T.make_mp_fc_fwd()
            self.k_mp_relu = T.make_mp_relu_fwd()
            self.k_mp_relu_bwd = T.make_mp_relu_bwd()
            self.k_mp_fc_bwd_filter = T.make_mp_fc_bwd_filter()
            self.k_mp_fc_bwd_data = T.make_mp_fc_bwd_data()
        else:
            from repro.kernels.elementwise import (
                make_relu_grad_kernel,
                make_relu_kernel,
            )

            # Data-parallel ReLU runs batch-striped via routine wrappers.
            self.k_relu = T.make_mp_relu_fwd()  # same body, striped dim 0
            self.k_relu_bwd = T.make_mp_relu_bwd()

    # -- task list --------------------------------------------------------------
    def _task_list(self):
        """The per-iteration (kernel, containers, grid, constants) tuples,
        in dependency order."""
        b = self.batch
        bgrid = Grid((b,), block0=1)
        P, G = self.p_datums, self.g_datums
        calls = [
            (
                self.k_conv_fwd,
                (
                    BlockStriped(self.x0),
                    Replicated(P["W1"]),
                    Replicated(P["b1"]),
                    InjectiveStriped(self.a1),
                ),
                bgrid,
                {},
            ),
            (
                self.k_pool_fwd,
                (
                    BlockStriped(self.a1),
                    InjectiveStriped(self.p1),
                    InjectiveStriped(self.m1),
                ),
                bgrid,
                {},
            ),
            (
                self.k_conv_fwd,
                (
                    BlockStriped(self.p1),
                    Replicated(P["W2"]),
                    Replicated(P["b2"]),
                    InjectiveStriped(self.a2),
                ),
                bgrid,
                {},
            ),
            (
                self.k_pool_fwd,
                (
                    BlockStriped(self.a2),
                    InjectiveStriped(self.p2),
                    InjectiveStriped(self.m2),
                ),
                bgrid,
                {},
            ),
            (
                self.k_reshape,
                (BlockStriped(self.p2), InjectiveStriped(self.f)),
                bgrid,
                {},
            ),
        ]
        calls += self._fc1_forward(bgrid)
        calls += [
            (
                self.k_fc_fwd,
                (
                    BlockStriped(self.hr),
                    Replicated(P["W4"]),
                    Replicated(P["b4"]),
                    InjectiveStriped(self.logits),
                ),
                bgrid,
                {},
            ),
            (
                self.k_softmax,
                (
                    BlockStriped(self.logits),
                    BlockStriped(self.labels),
                    InjectiveStriped(self.dlogits),
                    ReductiveStatic(self.loss),
                ),
                bgrid,
                {"batch_total": b},
            ),
            (
                self.k_fc_bwd_filter,
                (
                    BlockStriped(self.dlogits),
                    BlockStriped(self.hr),
                    ReductiveStatic(G["W4"]),
                    ReductiveStatic(G["b4"]),
                ),
                bgrid,
                {},
            ),
            (
                self.k_fc_bwd_data,
                (
                    BlockStriped(self.dlogits),
                    Replicated(P["W4"]),
                    InjectiveStriped(self.dhr),
                ),
                bgrid,
                {},
            ),
        ]
        calls += self._fc1_backward(bgrid)
        calls += [
            (
                self.k_reshape,
                (BlockStriped(self.df), InjectiveStriped(self.dp2)),
                bgrid,
                {},
            ),
            (
                self.k_pool_bwd,
                (
                    BlockStriped(self.dp2),
                    BlockStriped(self.m2),
                    InjectiveStriped(self.da2),
                ),
                bgrid,
                {},
            ),
            (
                self.k_conv_bwd_filter,
                (
                    BlockStriped(self.p1),
                    BlockStriped(self.da2),
                    ReductiveStatic(G["W2"]),
                    ReductiveStatic(G["b2"]),
                ),
                bgrid,
                {},
            ),
            (
                self.k_conv_bwd_data,
                (
                    BlockStriped(self.da2),
                    Replicated(P["W2"]),
                    InjectiveStriped(self.dp1),
                ),
                bgrid,
                {},
            ),
            (
                self.k_pool_bwd,
                (
                    BlockStriped(self.dp1),
                    BlockStriped(self.m1),
                    InjectiveStriped(self.da1),
                ),
                bgrid,
                {},
            ),
            (
                self.k_conv_bwd_filter,
                (
                    BlockStriped(self.x0),
                    BlockStriped(self.da1),
                    ReductiveStatic(G["W1"]),
                    ReductiveStatic(G["b1"]),
                ),
                bgrid,
                {},
            ),
        ]
        calls += self._updates()
        return calls

    def _fc1_forward(self, bgrid: Grid):
        P, G = self.p_datums, self.g_datums
        if self.mode == "data":
            return [
                (
                    self.k_fc_fwd,
                    (
                        BlockStriped(self.f),
                        Replicated(P["W3"]),
                        Replicated(P["b3"]),
                        InjectiveStriped(self.h),
                    ),
                    bgrid,
                    {},
                ),
                (
                    self.k_relu,
                    (BlockStriped(self.h), InjectiveStriped(self.hr)),
                    bgrid,
                    {},
                ),
            ]
        fgrid = Grid((FC1,), block0=1)
        return [
            (
                self.k_transpose,
                (BlockStriped(self.f), InjectiveColumnStriped(self.fT)),
                bgrid,
                {},
            ),
            (
                self.k_mp_fc_fwd,
                (
                    Block2D(P["W3"]),
                    BlockStriped(P["b3"]),
                    Block2DTransposed(self.fT),
                    InjectiveStriped(self.hT),
                ),
                fgrid,
                {},
            ),
            (
                self.k_mp_relu,
                (BlockStriped(self.hT), InjectiveStriped(self.hrT)),
                fgrid,
                {},
            ),
            (
                self.k_untranspose,
                (BlockColumnStriped(self.hrT), InjectiveStriped(self.hr)),
                bgrid,
                {},
            ),
        ]

    def _fc1_backward(self, bgrid: Grid):
        P, G = self.p_datums, self.g_datums
        if self.mode == "data":
            return [
                (
                    self.k_relu_bwd,
                    (
                        BlockStriped(self.h),
                        BlockStriped(self.dhr),
                        InjectiveStriped(self.dh),
                    ),
                    bgrid,
                    {},
                ),
                (
                    self.k_fc_bwd_filter,
                    (
                        BlockStriped(self.dh),
                        BlockStriped(self.f),
                        ReductiveStatic(G["W3"]),
                        ReductiveStatic(G["b3"]),
                    ),
                    bgrid,
                    {},
                ),
                (
                    self.k_fc_bwd_data,
                    (
                        BlockStriped(self.dh),
                        Replicated(P["W3"]),
                        InjectiveStriped(self.df),
                    ),
                    bgrid,
                    {},
                ),
            ]
        fgrid = Grid((FC1,), block0=1)
        return [
            (
                self.k_transpose,
                (BlockStriped(self.dhr), InjectiveColumnStriped(self.dhrT)),
                bgrid,
                {},
            ),
            (
                self.k_mp_relu_bwd,
                (
                    BlockStriped(self.hT),
                    BlockStriped(self.dhrT),
                    InjectiveStriped(self.dhT),
                ),
                fgrid,
                {},
            ),
            (
                self.k_mp_fc_bwd_filter,
                (
                    BlockStriped(self.dhT),
                    Block2DTransposed(self.fT),
                    InjectiveStriped(G["W3"]),
                    InjectiveStriped(G["b3"]),
                ),
                fgrid,
                {},
            ),
            (
                self.k_mp_fc_bwd_data,
                (
                    Block2D(P["W3"]),
                    BlockStriped(self.dhT),
                    ReductiveStatic(self.dfT),
                ),
                fgrid,
                {},
            ),
            (
                self.k_untranspose,
                (BlockColumnStriped(self.dfT), InjectiveStriped(self.df)),
                bgrid,
                {},
            ),
        ]

    def _updates(self):
        calls = []
        for name in PARAM_NAMES:
            p, g = self.p_datums[name], self.g_datums[name]
            grid = Grid((p.shape[0],), block0=1)
            calls.append(
                (
                    self.k_update,
                    (BlockStriped(p), BlockStriped(g), InjectiveStriped(p)),
                    grid,
                    {"lr": self.lr},
                )
            )
        return calls

    # -- framework interaction ------------------------------------------------------
    def _analyze_all(self) -> None:
        for kernel, containers, grid, constants in self._task_list():
            self.sched.analyze_call(
                kernel, *containers, grid=grid, constants=constants
            )

    def run_iteration(self) -> None:
        """Queue one training iteration (does not wait)."""
        for kernel, containers, grid, constants in self._task_list():
            self.sched.invoke_unmodified(
                kernel, *containers, grid=grid, constants=constants
            )

    def train_batch(
        self, images: np.ndarray, labels: np.ndarray
    ) -> Optional[float]:
        """Functional: load a batch, run one iteration, return the loss."""
        if not self.node.functional:
            raise RuntimeError("train_batch requires a functional node")
        self.x0.host[...] = images
        self.labels.host[...] = labels
        self.sched.mark_host_dirty(self.x0)
        self.sched.mark_host_dirty(self.labels)
        self.run_iteration()
        self.sched.gather(self.loss)
        return float(self.loss.host[0])

    def forward_batch(self, images: np.ndarray) -> np.ndarray:
        """Forward-only inference through the framework: runs the forward
        task chain on the devices and gathers the logits. Returns the
        ``(batch, 10)`` logits array."""
        if not self.node.functional:
            raise RuntimeError("forward_batch requires a functional node")
        self.x0.host[...] = images
        self.sched.mark_host_dirty(self.x0)
        forward = self._task_list()[: 5 + (4 if self.mode == "hybrid" else 2) + 1]
        for kernel, containers, grid, constants in forward:
            self.sched.invoke_unmodified(
                kernel, *containers, grid=grid, constants=constants
            )
        self.sched.gather(self.logits)
        return self.logits.host.copy()

    def evaluate(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy over one device-resident batch."""
        logits = self.forward_batch(images)
        return float((logits.argmax(axis=1) == labels).mean())

    def gather_params(self) -> LeNetParams:
        """Bring the device-resident parameters back to the host."""
        for name in PARAM_NAMES:
            self.sched.gather_async(self.p_datums[name])
        self.sched.wait_all()
        return self.params

    def measure_iteration(self, warmup: int = 1, iters: int = 3) -> float:
        """Timing mode: steady-state simulated seconds per iteration."""
        for _ in range(warmup):
            self.run_iteration()
        self.sched.wait_all()
        t0 = self.node.time
        for _ in range(iters):
            self.run_iteration()
        self.sched.wait_all()
        return (self.node.time - t0) / iters

    def throughput(self, warmup: int = 1, iters: int = 3) -> float:
        """Training throughput in images/second (the Fig. 11 metric)."""
        return self.batch / self.measure_iteration(warmup, iters)
