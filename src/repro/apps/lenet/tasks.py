"""MAPS-Multi task definitions for LeNet training (§6.1).

Each layer is an *unmodified routine* (§4.6) wrapping the simulated cuDNN
v2 / CUBLAS primitives — exactly how the paper's three frameworks all run
the same vendor kernels — with the memory access patterns declaring its
partitioning:

* forward/backward activations: ``BlockStriped`` in, ``InjectiveStriped``
  out (batch partitioning = data parallelism);
* shared parameters: ``Replicated`` inputs;
* data-parallel weight gradients: ``ReductiveStatic`` outputs (summed
  across devices — the framework infers the gradient exchange);
* hybrid model parallelism (fc1): ``Block2D`` row-striped weights,
  ``Block2DTransposed`` (full) activations, transposes via the
  column-striped patterns — switching a layer between data and model
  parallelism is literally a container swap, the paper's headline
  usability claim.
"""

from __future__ import annotations

import numpy as np

from repro.core.task import CostContext, Kernel
from repro.core.unmodified import RoutineContext, make_routine
from repro.libs import cudnn
from repro.libs.cublas import gemm_time


def _local_work(ctx: CostContext) -> int:
    return ctx.work_rect[0].size


def _stream(ctx: CostContext, nbytes: float) -> float:
    return nbytes / (ctx.spec.mem_bandwidth * ctx.calib.stream_efficiency)


# -- convolution / pooling ------------------------------------------------------
def make_conv_fwd() -> Kernel:
    """Containers: BlockStriped(x), Replicated(w), Replicated(b),
    InjectiveStriped(y); grid (batch,)."""

    def body(rc: RoutineContext) -> None:
        x, w, b, y = rc.parameters
        y[...] = cudnn.conv2d_forward(x, w) + b[None, :, None, None]

    def cost(ctx: CostContext) -> float:
        x = ctx.containers[0].datum
        w = ctx.containers[1].datum
        n = _local_work(ctx)
        k, c, r, s = w.shape
        oh, ow = x.shape[2] - r + 1, x.shape[3] - s + 1
        return cudnn.conv_time(
            ctx.spec, ctx.calib, cudnn.conv_flops(n, c, k, oh, ow, r, s)
        )

    return make_routine("cudnnConvFwd", body, cost=cost)


def make_conv_bwd_data() -> Kernel:
    """Containers: BlockStriped(dy), Replicated(w), InjectiveStriped(dx)."""

    def body(rc: RoutineContext) -> None:
        dy, w, dx = rc.parameters
        dx[...] = cudnn.conv2d_backward_data(dy, w)

    def cost(ctx: CostContext) -> float:
        dy = ctx.containers[0].datum
        w = ctx.containers[1].datum
        n = _local_work(ctx)
        k, c, r, s = w.shape
        oh, ow = dy.shape[2], dy.shape[3]
        return cudnn.conv_time(
            ctx.spec, ctx.calib, cudnn.conv_flops(n, c, k, oh, ow, r, s)
        )

    return make_routine("cudnnConvBwdData", body, cost=cost)


def make_conv_bwd_filter() -> Kernel:
    """Containers: BlockStriped(x), BlockStriped(dy), ReductiveStatic(dw),
    ReductiveStatic(db) — the per-device partial filter gradients are the
    data-parallel exchange the framework aggregates."""

    def body(rc: RoutineContext) -> None:
        x, dy, dw, db = rc.parameters
        dw += cudnn.conv2d_backward_filter(x, dy)
        db += dy.sum(axis=(0, 2, 3))

    def cost(ctx: CostContext) -> float:
        x = ctx.containers[0].datum
        dy = ctx.containers[1].datum
        n = _local_work(ctx)
        k = dy.shape[1]
        c = x.shape[1]
        oh, ow = dy.shape[2], dy.shape[3]
        r = x.shape[2] - oh + 1
        return cudnn.conv_time(
            ctx.spec, ctx.calib, cudnn.conv_flops(n, c, k, oh, ow, r, r)
        )

    return make_routine("cudnnConvBwdFilter", body, cost=cost)


def make_pool_fwd() -> Kernel:
    """Containers: BlockStriped(x), InjectiveStriped(y),
    InjectiveStriped(mask)."""

    def body(rc: RoutineContext) -> None:
        x, y, mask = rc.parameters
        pooled, arg = cudnn.maxpool2x2_forward(x)
        y[...] = pooled
        mask[...] = arg

    def cost(ctx: CostContext) -> float:
        x = ctx.containers[0].datum
        elems = _local_work(ctx) * int(np.prod(x.shape[1:]))
        return cudnn.pool_time(ctx.spec, ctx.calib, elems)

    return make_routine("cudnnPoolFwd", body, cost=cost)


def make_pool_bwd() -> Kernel:
    """Containers: BlockStriped(dy), BlockStriped(mask),
    InjectiveStriped(dx)."""

    def body(rc: RoutineContext) -> None:
        dy, mask, dx = rc.parameters
        dx[...] = cudnn.maxpool2x2_backward(dy, mask, dx.shape)

    def cost(ctx: CostContext) -> float:
        dx = ctx.containers[2].datum
        elems = _local_work(ctx) * int(np.prod(dx.shape[1:]))
        return cudnn.pool_time(ctx.spec, ctx.calib, elems)

    return make_routine("cudnnPoolBwd", body, cost=cost)


# -- reshape / transpose ----------------------------------------------------------
def make_reshape() -> Kernel:
    """Containers: BlockStriped(x), InjectiveStriped(y) of equal volume."""

    def body(rc: RoutineContext) -> None:
        x, y = rc.parameters
        y[...] = x.reshape(y.shape)

    def cost(ctx: CostContext) -> float:
        x = ctx.containers[0].datum
        n = _local_work(ctx) * int(np.prod(x.shape[1:]))
        return _stream(ctx, 2 * 4 * n)

    return make_routine("reshape", body, cost=cost)


def make_transpose() -> Kernel:
    """(B,F) row stripes -> (F,B) column stripes. Containers:
    BlockStriped(x), InjectiveColumnStriped(xT); grid (B,). No
    communication: each device transposes its own batch stripe."""

    def body(rc: RoutineContext) -> None:
        x, xt = rc.parameters
        xt[...] = x.T

    def cost(ctx: CostContext) -> float:
        x = ctx.containers[0].datum
        n = _local_work(ctx) * x.shape[1]
        return _stream(ctx, 2 * 4 * n)

    return make_routine("transpose", body, cost=cost)


def make_untranspose() -> Kernel:
    """(F,B) -> (B,F). Containers: BlockColumnStriped(xT),
    InjectiveStriped(x); grid (B,). When xT was produced row-striped this
    triggers the all-to-all activation exchange of hybrid parallelism."""

    def body(rc: RoutineContext) -> None:
        xt, x = rc.parameters
        x[...] = xt.T

    def cost(ctx: CostContext) -> float:
        x = ctx.containers[1].datum
        n = _local_work(ctx) * x.shape[1]
        return _stream(ctx, 2 * 4 * n)

    return make_routine("untranspose", body, cost=cost)


# -- fully connected (data parallel) -----------------------------------------------
def make_fc_fwd() -> Kernel:
    """y = x @ w.T + b. Containers: BlockStriped(x), Replicated(w),
    Replicated(b), InjectiveStriped(y); grid (batch,)."""

    def body(rc: RoutineContext) -> None:
        x, w, b, y = rc.parameters
        y[...] = x @ w.T + b

    def cost(ctx: CostContext) -> float:
        w = ctx.containers[1].datum
        out_f, in_f = w.shape
        return gemm_time(ctx, _local_work(ctx), out_f, in_f)

    return make_routine("cublasFcFwd", body, cost=cost)


def make_fc_bwd_data() -> Kernel:
    """dx = dy @ w. Containers: BlockStriped(dy), Replicated(w),
    InjectiveStriped(dx)."""

    def body(rc: RoutineContext) -> None:
        dy, w, dx = rc.parameters
        dx[...] = dy @ w

    def cost(ctx: CostContext) -> float:
        w = ctx.containers[1].datum
        out_f, in_f = w.shape
        return gemm_time(ctx, _local_work(ctx), in_f, out_f)

    return make_routine("cublasFcBwdData", body, cost=cost)


def make_fc_bwd_filter() -> Kernel:
    """dw = dy.T @ x, db = sum(dy). Containers: BlockStriped(dy),
    BlockStriped(x), ReductiveStatic(dw), ReductiveStatic(db)."""

    def body(rc: RoutineContext) -> None:
        dy, x, dw, db = rc.parameters
        dw += dy.T @ x
        db += dy.sum(axis=0)

    def cost(ctx: CostContext) -> float:
        dw = ctx.containers[2].datum
        out_f, in_f = dw.shape
        return gemm_time(ctx, out_f, in_f, _local_work(ctx))

    return make_routine("cublasFcBwdFilter", body, cost=cost)


# -- fully connected (model parallel, hybrid §6.1) ---------------------------------
def make_mp_fc_fwd() -> Kernel:
    """hT = w_rows @ fT + b_rows. Containers: Block2D(w), BlockStriped(b),
    Block2DTransposed(fT) [full -> automatic all-gather],
    InjectiveStriped(hT); grid (out_features,)."""

    def body(rc: RoutineContext) -> None:
        w, b, ft, ht = rc.parameters
        ht[...] = w @ ft + b[:, None]

    def cost(ctx: CostContext) -> float:
        ft = ctx.containers[2].datum
        in_f, batch = ft.shape
        return gemm_time(ctx, _local_work(ctx), batch, in_f)

    return make_routine("cublasMpFcFwd", body, cost=cost)


def make_mp_relu_fwd() -> Kernel:
    """Containers: BlockStriped(hT), InjectiveStriped(hrT)."""

    def body(rc: RoutineContext) -> None:
        ht, hrt = rc.parameters
        hrt[...] = np.maximum(ht, 0)

    def cost(ctx: CostContext) -> float:
        ht = ctx.containers[0].datum
        return _stream(ctx, 2 * 4 * _local_work(ctx) * ht.shape[1])

    return make_routine("mpRelu", body, cost=cost)


def make_mp_relu_bwd() -> Kernel:
    """dhT = dhrT * (hT > 0). Containers: BlockStriped(hT),
    BlockStriped(dhrT) [produced column-striped -> all-to-all],
    InjectiveStriped(dhT)."""

    def body(rc: RoutineContext) -> None:
        ht, dhrt, dht = rc.parameters
        dht[...] = dhrt * (ht > 0)

    def cost(ctx: CostContext) -> float:
        ht = ctx.containers[0].datum
        return _stream(ctx, 3 * 4 * _local_work(ctx) * ht.shape[1])

    return make_routine("mpReluBwd", body, cost=cost)


def make_mp_fc_bwd_filter() -> Kernel:
    """dw_rows = dhT_rows @ fT.T; db_rows = dhT_rows.sum(1). Model-parallel
    weight gradients stay device-local (InjectiveStriped) — the hybrid
    approach's memory/communication win. Containers: BlockStriped(dhT),
    Block2DTransposed(fT), InjectiveStriped(dw), InjectiveStriped(db)."""

    def body(rc: RoutineContext) -> None:
        dht, ft, dw, db = rc.parameters
        dw[...] = dht @ ft.T
        db[...] = dht.sum(axis=1)

    def cost(ctx: CostContext) -> float:
        ft = ctx.containers[1].datum
        in_f, batch = ft.shape
        return gemm_time(ctx, _local_work(ctx), in_f, batch)

    return make_routine("cublasMpFcBwdFilter", body, cost=cost)


def make_mp_fc_bwd_data() -> Kernel:
    """dfT += w_rows.T @ dhT_rows — a reduction over the partitioned
    feature dimension: ReductiveStatic(dfT) (all-reduce inferred by the
    framework). Containers: Block2D(w), BlockStriped(dhT),
    ReductiveStatic(dfT); grid (out_features,)."""

    def body(rc: RoutineContext) -> None:
        w, dht, dft = rc.parameters
        dft += w.T @ dht

    def cost(ctx: CostContext) -> float:
        dft = ctx.containers[2].datum
        in_f, batch = dft.shape
        return gemm_time(ctx, in_f, batch, _local_work(ctx))

    return make_routine("cublasMpFcBwdData", body, cost=cost)


# -- loss and update --------------------------------------------------------------
def make_softmax_loss() -> Kernel:
    """dlogits = (softmax(logits) - onehot(labels)) / batch_total; also
    accumulates the mean NLL into a 1-element reductive loss. Containers:
    BlockStriped(logits), BlockStriped(labels), InjectiveStriped(dlogits),
    ReductiveStatic(loss); constants: batch_total."""

    def body(rc: RoutineContext) -> None:
        logits, labels, dlogits, loss = rc.parameters
        total = rc.constant("batch_total")
        z = logits - logits.max(axis=1, keepdims=True)
        e = np.exp(z)
        sm = e / e.sum(axis=1, keepdims=True)
        n = labels.shape[0]
        idx = np.arange(n)
        loss += -np.log(sm[idx, labels] + 1e-12).sum() / total
        sm[idx, labels] -= 1.0
        dlogits[...] = sm / total

    def cost(ctx: CostContext) -> float:
        classes = ctx.containers[0].datum.shape[1]
        return _stream(ctx, 4 * 4 * _local_work(ctx) * classes)

    return make_routine("softmaxLoss", body, cost=cost)


def make_sgd_update() -> Kernel:
    """w -= lr * dw, partitioned along the parameter's first dimension.
    Containers: BlockStriped(w), BlockStriped(dw), InjectiveStriped(w);
    grid (w.shape[0],); constants: lr.

    For data-parallel (ReductiveStatic) gradients, reading ``dw`` triggers
    the framework's aggregation + redistribution — the gradient exchange.
    For model-parallel (InjectiveStriped) gradients the stripes are
    already local and no communication occurs.
    """

    def body(rc: RoutineContext) -> None:
        w_in, dw, w_out = rc.parameters
        w_out[...] = w_in - rc.constant("lr") * dw.astype(w_in.dtype)

    def cost(ctx: CostContext) -> float:
        w = ctx.containers[0].datum
        frac = _local_work(ctx) / w.shape[0]
        return _stream(ctx, 3 * 4 * w.size * frac)

    return make_routine("sgdUpdate", body, cost=cost)
