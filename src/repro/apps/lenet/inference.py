"""Fixed-shape LeNet inference engine (forward pass only, §6.1).

The serving layer (``repro.serving``) runs LeNet as an inference
microservice: a *replica* owns one device and answers batched requests.
This module is the engine a replica hosts — the forward half of the Fig.
10 network, built once over a (possibly device-restricted) scheduler at a
fixed batch shape, then invoked per batch.

The shape is fixed on purpose, exactly like a compiled fixed-shape
inference engine (TensorRT-style): every batch is padded to ``batch``
rows, so every invocation resolves to the *same* task signatures (plan
cache hits from batch two onward) and — because every per-sample
computation (conv via im2col, pooling, GEMMs) touches only that sample's
rows at an identical total shape — a request's logits are **bitwise
independent of which other requests shared its batch**. That invariant is
what lets the dynamic batcher promise batched == sequential bit-identity.
"""

from __future__ import annotations

import numpy as np

from repro.apps.lenet import tasks as T
from repro.apps.lenet.network import (
    CLASSES,
    CONV1_FILTERS,
    CONV2_FILTERS,
    FC1,
    FLAT,
    LeNetParams,
)
from repro.core import Datum, Grid, Scheduler
from repro.patterns import (
    BlockStriped,
    InjectiveStriped,
    Replicated,
)


class LeNetInference:
    """Forward-only LeNet over a scheduler, at one fixed batch shape.

    Args:
        sched: The scheduler to build on. The job-server/serving layers
            pass a device-restricted one (``Scheduler(node, devices=(d,))``)
            so each replica stays on its own GPU.
        params: Host-side parameters (shared across replicas — every
            replica of one model binds the *same* arrays, so any replica
            answers any request identically).
        batch: Fixed batch shape; smaller batches are zero-padded.
    """

    def __init__(self, sched: Scheduler, params: LeNetParams, batch: int):
        if batch < 1:
            raise ValueError("need batch >= 1")
        self.sched = sched
        self.params = params
        self.batch = int(batch)
        b = self.batch
        self._images = np.zeros((b, 1, 28, 28), np.float32)
        self._build_datums()
        self._build_kernels()
        self._grid = Grid((b,), block0=1)
        for kernel, containers in self._forward_calls():
            sched.analyze_call(kernel, *containers, grid=self._grid)

    def _datum(self, name: str, shape, dtype=np.float32) -> Datum:
        d = Datum(shape, dtype, name)
        d.bind(np.zeros(shape, dtype))
        return d

    def _build_datums(self) -> None:
        b = self.batch
        self.x0 = Datum((b, 1, 28, 28), np.float32, "infer.x0").bind(
            self._images
        )
        self.a1 = self._datum("infer.a1", (b, CONV1_FILTERS, 24, 24))
        self.p1 = self._datum("infer.p1", (b, CONV1_FILTERS, 12, 12))
        self.m1 = self._datum("infer.m1", (b, CONV1_FILTERS, 12, 12), np.int8)
        self.a2 = self._datum("infer.a2", (b, CONV2_FILTERS, 8, 8))
        self.p2 = self._datum("infer.p2", (b, CONV2_FILTERS, 4, 4))
        self.m2 = self._datum("infer.m2", (b, CONV2_FILTERS, 4, 4), np.int8)
        self.f = self._datum("infer.f", (b, FLAT))
        self.h = self._datum("infer.h", (b, FC1))
        self.hr = self._datum("infer.hr", (b, FC1))
        self.logits = self._datum("infer.logits", (b, CLASSES))
        self.p_datums: dict[str, Datum] = {}
        for name, arr in self.params.items():
            self.p_datums[name] = Datum(arr.shape, np.float32, name).bind(arr)

    def _build_kernels(self) -> None:
        self.k_conv = T.make_conv_fwd()
        self.k_pool = T.make_pool_fwd()
        self.k_reshape = T.make_reshape()
        self.k_fc = T.make_fc_fwd()
        self.k_relu = T.make_mp_relu_fwd()  # same body, striped dim 0

    def _forward_calls(self):
        P = self.p_datums
        return [
            (
                self.k_conv,
                (
                    BlockStriped(self.x0),
                    Replicated(P["W1"]),
                    Replicated(P["b1"]),
                    InjectiveStriped(self.a1),
                ),
            ),
            (
                self.k_pool,
                (
                    BlockStriped(self.a1),
                    InjectiveStriped(self.p1),
                    InjectiveStriped(self.m1),
                ),
            ),
            (
                self.k_conv,
                (
                    BlockStriped(self.p1),
                    Replicated(P["W2"]),
                    Replicated(P["b2"]),
                    InjectiveStriped(self.a2),
                ),
            ),
            (
                self.k_pool,
                (
                    BlockStriped(self.a2),
                    InjectiveStriped(self.p2),
                    InjectiveStriped(self.m2),
                ),
            ),
            (
                self.k_reshape,
                (BlockStriped(self.p2), InjectiveStriped(self.f)),
            ),
            (
                self.k_fc,
                (
                    BlockStriped(self.f),
                    Replicated(P["W3"]),
                    Replicated(P["b3"]),
                    InjectiveStriped(self.h),
                ),
            ),
            (
                self.k_relu,
                (BlockStriped(self.h), InjectiveStriped(self.hr)),
            ),
            (
                self.k_fc,
                (
                    BlockStriped(self.hr),
                    Replicated(P["W4"]),
                    Replicated(P["b4"]),
                    InjectiveStriped(self.logits),
                ),
            ),
        ]

    def infer(self, images: np.ndarray) -> np.ndarray:
        """Run one padded batch; returns the ``(batch, 10)`` logits.

        ``images`` may hold fewer than ``batch`` samples; the remainder is
        zero-padded (rows beyond ``images.shape[0]`` of the result are the
        padding's logits and are discarded by the caller)."""
        k = images.shape[0]
        if k > self.batch:
            raise ValueError(
                f"batch of {k} exceeds the engine's fixed shape {self.batch}"
            )
        self._images[:k] = images
        if k < self.batch:
            self._images[k:] = 0.0
        self.sched.mark_host_dirty(self.x0)
        for kernel, containers in self._forward_calls():
            self.sched.invoke_unmodified(kernel, *containers, grid=self._grid)
        self.sched.gather(self.logits)
        return self.logits.host.copy()
