"""LeNet CNN training and inference over MAPS-Multi (§6.1, Figs. 10-11)."""

from repro.apps.lenet.data import synthetic_mnist
from repro.apps.lenet.inference import LeNetInference
from repro.apps.lenet.network import (
    LeNetParams,
    reference_backward,
    reference_forward,
    reference_loss,
    reference_step,
)
from repro.apps.lenet.trainer import MapsLeNetTrainer

__all__ = [
    "synthetic_mnist",
    "LeNetParams",
    "LeNetInference",
    "reference_forward",
    "reference_backward",
    "reference_loss",
    "reference_step",
    "MapsLeNetTrainer",
]
