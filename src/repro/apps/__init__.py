"""Real-world applications (§6): LeNet deep learning and NMF."""
