"""Non-negative matrix factorization: reference updates (§6.2).

Given ``V (n x m)``, find non-negative ``W (n x k)``, ``H (k x m)`` with
``V ~= W @ H``, via the multiplicative update rule the paper cites
(Brunet et al.):

    H_ij <- H_ij * (sum_p W_pi V_pj / (WH)_pj) / (sum_r W_ri)
    W_ij <- W_ij * (sum_p H_jp V_ip / (WH)_ip) / (sum_r H_jr)

The reference implementation here is the oracle the MAPS-Multi version is
validated against.
"""

from __future__ import annotations

import numpy as np

EPS = 1e-9


def nmf_init(
    n: int, m: int, k: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random non-negative V, W, H (float32)."""
    rng = np.random.default_rng(seed)
    v = rng.random((n, m), dtype=np.float32) + 0.1
    w = rng.random((n, k), dtype=np.float32) + 0.1
    h = rng.random((k, m), dtype=np.float32) + 0.1
    return v, w, h


def reference_iteration(
    v: np.ndarray, w: np.ndarray, h: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """One full (H then W) multiplicative update; returns new (W, H)."""
    wh = w @ h
    vt = v / (wh + EPS)
    acc = w.T @ vt  # (k, m)
    col = w.sum(axis=0)  # (k,)
    h = h * acc / (col[:, None] + EPS)

    wh2 = w @ h
    vt2 = v / (wh2 + EPS)
    num = vt2 @ h.T  # (n, k)
    row = h.sum(axis=1)  # (k,)
    w = w * num / (row[None, :] + EPS)
    return w, h


def frobenius_error(v: np.ndarray, w: np.ndarray, h: np.ndarray) -> float:
    """||V - WH||_F, the convergence criterion of §6.2."""
    d = v - w @ h
    return float(np.sqrt((d * d).sum()))
