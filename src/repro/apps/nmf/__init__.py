"""Non-negative matrix factorization over MAPS-Multi (§6.2, Figs. 12-13)."""

from repro.apps.nmf.algorithm import (
    frobenius_error,
    nmf_init,
    reference_iteration,
)
from repro.apps.nmf.maps_nmf import MapsNMF

__all__ = [
    "nmf_init",
    "reference_iteration",
    "frobenius_error",
    "MapsNMF",
]
