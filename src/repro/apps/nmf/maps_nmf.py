"""NMF over MAPS-Multi (§6.2, Figs. 12-13).

The update rule decomposes into the Fig. 12 task chain. Partitioning
follows the figure's key property: V, WH, V~ and W are processed in
independent *row stripes* — no device ever holds a complete copy of the
large V — while the small H (k x m, k << n) is the only replicated datum.
The framework infers exactly two inter-GPU exchange points per iteration
(§6.2): the reduce-scatter of the Acc accumulator before the H update,
and the all-gather of the freshly updated H stripes before the W phase.
"""

from __future__ import annotations

import numpy as np

from repro.apps.nmf.algorithm import EPS
from repro.core import Grid, Matrix, Scheduler, Vector
from repro.core.task import CostContext, Kernel
from repro.core.unmodified import RoutineContext, make_routine
from repro.libs.cublas import gemm_time
from repro.patterns import (
    Block2D,
    Block2DTransposed,
    BlockStriped,
    InjectiveStriped,
    ReductiveStatic,
)
from repro.sim.node import SimNode


def _stream(ctx: CostContext, nbytes: float) -> float:
    return nbytes / (ctx.spec.mem_bandwidth * ctx.calib.stream_efficiency)


def _make_wh() -> Kernel:
    """WH stripe = W stripe @ H. Containers: Block2D(W),
    Block2DTransposed(H), InjectiveStriped(WH); grid (n,)."""

    def body(rc: RoutineContext) -> None:
        w, h, wh = rc.parameters
        wh[...] = w @ h

    def cost(ctx: CostContext) -> float:
        w = ctx.containers[0].datum
        h = ctx.containers[1].datum
        return gemm_time(ctx, ctx.work_rect[0].size, h.shape[1], w.shape[1])

    return make_routine("nmfWH", body, cost=cost)


def _make_vdiv() -> Kernel:
    """V~ stripe = V / (WH + eps). Containers: BlockStriped(V),
    BlockStriped(WH), InjectiveStriped(V~)."""

    def body(rc: RoutineContext) -> None:
        v, wh, vt = rc.parameters
        vt[...] = v / (wh + EPS)

    def cost(ctx: CostContext) -> float:
        v = ctx.containers[0].datum
        n = ctx.work_rect[0].size * v.shape[1]
        return _stream(ctx, 3 * 4 * n)

    return make_routine("nmfVdiv", body, cost=cost)


def _make_acc() -> Kernel:
    """Acc += W_s^T @ V~_s; col += colsums(W_s) — the reductions over the
    partitioned rows (orange blocks of Fig. 12). Containers:
    BlockStriped(W), BlockStriped(V~), ReductiveStatic(Acc),
    ReductiveStatic(col); grid (n,)."""

    def body(rc: RoutineContext) -> None:
        w, vt, acc, col = rc.parameters
        acc += w.T @ vt
        col += w.sum(axis=0)

    def cost(ctx: CostContext) -> float:
        w = ctx.containers[0].datum
        vt = ctx.containers[1].datum
        return gemm_time(
            ctx, w.shape[1], vt.shape[1], ctx.work_rect[0].size
        )

    return make_routine("nmfAcc", body, cost=cost)


def _make_h_update() -> Kernel:
    """H = H * Acc / col. Containers: BlockStriped(H), BlockStriped(Acc),
    BlockStriped(col), InjectiveStriped(H); grid (k,). Consuming the
    reductive Acc/col here triggers the peer-to-peer reduce-scatter."""

    def body(rc: RoutineContext) -> None:
        h_in, acc, col, h_out = rc.parameters
        h_out[...] = h_in * acc / (col[:, None] + EPS)

    def cost(ctx: CostContext) -> float:
        h = ctx.containers[0].datum
        n = ctx.work_rect[0].size * h.shape[1]
        return _stream(ctx, 4 * 4 * n)

    return make_routine("nmfHUpdate", body, cost=cost)


def _make_num() -> Kernel:
    """Num stripe = V~_s @ H^T (local: H is replicated). Containers:
    BlockStriped(V~), Block2DTransposed(H), InjectiveStriped(Num);
    grid (n,)."""

    def body(rc: RoutineContext) -> None:
        vt, h, num = rc.parameters
        num[...] = vt @ h.T

    def cost(ctx: CostContext) -> float:
        h = ctx.containers[1].datum
        return gemm_time(
            ctx, ctx.work_rect[0].size, h.shape[0], h.shape[1]
        )

    return make_routine("nmfNum", body, cost=cost)


def _make_w_update() -> Kernel:
    """W = W * Num / rowsums(H). Containers: BlockStriped(W),
    BlockStriped(Num), Block2DTransposed(H), InjectiveStriped(W);
    grid (n,)."""

    def body(rc: RoutineContext) -> None:
        w_in, num, h, w_out = rc.parameters
        w_out[...] = w_in * num / (h.sum(axis=1)[None, :] + EPS)

    def cost(ctx: CostContext) -> float:
        w = ctx.containers[0].datum
        n = ctx.work_rect[0].size * w.shape[1]
        return _stream(ctx, 4 * 4 * n)

    return make_routine("nmfWUpdate", body, cost=cost)


def _make_sqerr() -> Kernel:
    """err += ||V_s - WH_s||^2 partials. Containers: BlockStriped(V),
    BlockStriped(WH), ReductiveStatic(err); grid (n,)."""

    def body(rc: RoutineContext) -> None:
        v, wh, err = rc.parameters
        d = v - wh
        err += (d * d).sum()

    def cost(ctx: CostContext) -> float:
        v = ctx.containers[0].datum
        n = ctx.work_rect[0].size * v.shape[1]
        return _stream(ctx, 2 * 4 * n)

    return make_routine("nmfSqErr", body, cost=cost)


class MapsNMF:
    """Multi-GPU NMF of a bound V into W @ H over MAPS-Multi."""

    def __init__(
        self,
        node: SimNode,
        v: np.ndarray | tuple[int, int],
        k: int = 128,
        seed: int = 0,
        sanitize: bool = False,
    ):
        self.node = node
        self.sched = Scheduler(node, sanitize=sanitize)
        if isinstance(v, np.ndarray):
            n, m = v.shape
        else:
            n, m = v
        self.n, self.m, self.k = n, m, k
        f = node.functional

        self.V = Matrix(n, m, np.float32, "V")
        self.W = Matrix(n, k, np.float32, "W")
        self.H = Matrix(k, m, np.float32, "H")
        self.WH = Matrix(n, m, np.float32, "WH")
        self.Vt = Matrix(n, m, np.float32, "Vt")
        self.Acc = Matrix(k, m, np.float32, "Acc")
        self.col = Vector(k, np.float32, "col")
        self.Num = Matrix(n, k, np.float32, "Num")
        self.err = Vector(1, np.float64, "err")
        if f:
            rng = np.random.default_rng(seed)
            self.V.bind(np.ascontiguousarray(v, dtype=np.float32))
            self.W.bind(rng.random((n, k), dtype=np.float32) + 0.1)
            self.H.bind(rng.random((k, m), dtype=np.float32) + 0.1)
            for d in (self.WH, self.Vt, self.Acc, self.Num):
                d.bind(np.zeros(d.shape, np.float32))
            self.col.bind(np.zeros(k, np.float32))
            self.err.bind(np.zeros(1, np.float64))

        self.k_wh = _make_wh()
        self.k_vdiv = _make_vdiv()
        self.k_acc = _make_acc()
        self.k_hup = _make_h_update()
        self.k_num = _make_num()
        self.k_wup = _make_w_update()
        self.k_err = _make_sqerr()
        self._ngrid = Grid((n,))
        self._kgrid = Grid((k,), block0=1)
        for kern, containers, grid in self._task_list(with_error=True):
            self.sched.analyze_call(kern, *containers, grid=grid)

    def _task_list(self, with_error: bool = False):
        wh_args = (
            Block2D(self.W),
            Block2DTransposed(self.H),
            InjectiveStriped(self.WH),
        )
        calls = [
            # H phase.
            (self.k_wh, wh_args, self._ngrid),
            (
                self.k_vdiv,
                (
                    BlockStriped(self.V),
                    BlockStriped(self.WH),
                    InjectiveStriped(self.Vt),
                ),
                self._ngrid,
            ),
            (
                self.k_acc,
                (
                    BlockStriped(self.W),
                    BlockStriped(self.Vt),
                    ReductiveStatic(self.Acc),
                    ReductiveStatic(self.col),
                ),
                self._ngrid,
            ),
            (
                self.k_hup,
                (
                    BlockStriped(self.H),
                    BlockStriped(self.Acc),
                    BlockStriped(self.col),
                    InjectiveStriped(self.H),
                ),
                self._kgrid,
            ),
            # W phase (the fresh H stripes all-gather here).
            (self.k_wh, wh_args, self._ngrid),
            (
                self.k_vdiv,
                (
                    BlockStriped(self.V),
                    BlockStriped(self.WH),
                    InjectiveStriped(self.Vt),
                ),
                self._ngrid,
            ),
            (
                self.k_num,
                (
                    BlockStriped(self.Vt),
                    Block2DTransposed(self.H),
                    InjectiveStriped(self.Num),
                ),
                self._ngrid,
            ),
            (
                self.k_wup,
                (
                    BlockStriped(self.W),
                    BlockStriped(self.Num),
                    Block2DTransposed(self.H),
                    InjectiveStriped(self.W),
                ),
                self._ngrid,
            ),
        ]
        if with_error:
            calls.append(
                (
                    self.k_err,
                    (
                        BlockStriped(self.V),
                        BlockStriped(self.WH),
                        ReductiveStatic(self.err),
                    ),
                    self._ngrid,
                )
            )
        return calls

    def run_iteration(self) -> None:
        """Queue one full (H then W) update."""
        for kern, containers, grid in self._task_list():
            self.sched.invoke_unmodified(kern, *containers, grid=grid)

    def error(self) -> float:
        """Queue WH + squared-error tasks and return ||V - WH||_F."""
        wh_args = (
            Block2D(self.W),
            Block2DTransposed(self.H),
            InjectiveStriped(self.WH),
        )
        self.sched.invoke_unmodified(self.k_wh, *wh_args, grid=self._ngrid)
        self.sched.invoke_unmodified(
            self.k_err,
            BlockStriped(self.V),
            BlockStriped(self.WH),
            ReductiveStatic(self.err),
            grid=self._ngrid,
        )
        self.sched.gather(self.err)
        return float(np.sqrt(self.err.host[0]))

    def factorize(self, iterations: int) -> tuple[np.ndarray, np.ndarray]:
        """Run ``iterations`` updates and gather W, H to the host."""
        for _ in range(iterations):
            self.run_iteration()
        self.sched.gather_async(self.W)
        self.sched.gather_async(self.H)
        self.sched.wait_all()
        return self.W.host, self.H.host

    def measure_iteration(self, warmup: int = 1, iters: int = 3) -> float:
        """Timing mode: steady-state simulated seconds per iteration."""
        for _ in range(warmup):
            self.run_iteration()
        self.sched.wait_all()
        t0 = self.node.time
        for _ in range(iters):
            self.run_iteration()
        self.sched.wait_all()
        return (self.node.time - t0) / iters

    def throughput(self) -> float:
        """Iterations per second (the Fig. 13 metric)."""
        return 1.0 / self.measure_iteration()
