"""The multi-tenant job server (DESIGN.md §13).

One :class:`JobServer` owns one simulated node and time-slices it between
tenants, Slurm-style: ``submit`` runs admission control against the
tenant's :class:`~repro.server.jobs.TenantQuota` and enqueues a
:class:`~repro.server.jobs.Job`; the scheduling loop picks the most
underserved eligible job (fair share with priority aging), leases the node
to it (``SimNode.begin_lease``: tenant fault plan, memory-quota capacity
clamp, per-tenant fault domain), and runs checkpoint-sized chunks until
the job finishes, its time slice expires (cooperative preemption at a
checkpoint boundary, recorded as a :class:`~repro.errors.PreemptedError`),
its deadline or simulated-time quota trips, or an unrecoverable fault
tears the lease down (capped-exponential backoff requeue).

Scheduling is **serial**: at most one job runs at a time, which keeps
fault attribution exact and makes every schedule a deterministic function
of the submissions — two servers fed the same jobs produce identical
histories, simulated times and (bit-identical) results.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.core import Scheduler
from repro.errors import (
    CapacityError,
    DeadlineExceededError,
    PreemptedError,
    QuotaExceededError,
    UnrecoverableError,
)
from repro.hardware import GTX_780
from repro.hardware.specs import GPUSpec
from repro.server.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    PREEMPTED,
    RUNNING,
    Job,
    JobSpec,
    TenantQuota,
)
from repro.server.workloads import Workload
from repro.sim.node import SimNode


def solo_run(
    workload: Workload,
    spec: GPUSpec = GTX_780,
    num_gpus: int = 4,
    gpus: Optional[int] = None,
    functional: bool = True,
) -> tuple:
    """Run a workload alone on a fresh node — the baseline every server
    job is compared against. Returns ``(result, sim_seconds)``."""
    node = SimNode(spec, num_gpus, functional=functional)
    devices = tuple(range(gpus)) if gpus is not None else None
    sched = Scheduler(node, devices=devices)
    t0 = node.time  # before bind: leases pay analysis too, so the
    workload.bind(sched)  # baseline must include it once
    while not workload.finished:
        workload.run_chunk(sched)
    return workload.result(), node.time - t0


class JobServer:
    """Slurm-like multi-tenant job service over one simulated node.

    Args:
        spec: GPU model of the node (Table 3).
        num_gpus: Node size.
        functional: Functional-mode node (results checkable); the server
            is mode-agnostic.
        time_slice: Simulated seconds a job may hold the node while other
            work is eligible; expiry preempts at the next checkpoint
            boundary. ``None`` disables preemption.
        quotas: tenant name -> :class:`TenantQuota`. Unknown tenants get
            ``default_quota``.
        default_quota: Allowance for tenants not in ``quotas``.
        aging_rate: Fair-share priority aging (DESIGN.md §13): a waiting
            job's effective usage is discounted by ``aging_rate`` *
            wait-seconds, so even a heavy tenant's job eventually runs
            (no starvation).
        requeue_base: First fault-requeue backoff in simulated seconds
            (doubles per requeue).
        requeue_cap: Upper bound on a single backoff interval.
        max_requeues: Fault requeues before the job fails for good.
    """

    def __init__(
        self,
        spec: GPUSpec = GTX_780,
        num_gpus: int = 4,
        functional: bool = True,
        time_slice: Optional[float] = None,
        quotas: Optional[dict[str, TenantQuota]] = None,
        default_quota: TenantQuota = TenantQuota(),
        aging_rate: float = 0.1,
        requeue_base: float = 1e-4,
        requeue_cap: float = 1e-2,
        max_requeues: int = 4,
    ):
        self.node = SimNode(spec, num_gpus, functional=functional)
        self.time_slice = time_slice
        self.quotas = dict(quotas or {})
        self.default_quota = default_quota
        self.aging_rate = float(aging_rate)
        self.requeue_base = float(requeue_base)
        self.requeue_cap = float(requeue_cap)
        self.max_requeues = int(max_requeues)
        self.jobs: dict[str, Job] = {}
        self._order: dict[str, int] = {}  # submission sequence (tie-break)
        self._ids = itertools.count(1)
        #: tenant -> simulated execution seconds delivered (fair share).
        self.tenant_usage: dict[str, float] = {}

    # -- quota helpers ---------------------------------------------------------
    def quota(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def _gpus_of(self, spec: JobSpec) -> int:
        return spec.gpus if spec.gpus is not None else self.node.num_gpus

    # -- Slurm-like API --------------------------------------------------------
    def submit(self, spec: JobSpec) -> Job:
        """Admission control, then enqueue. Raises
        :class:`~repro.errors.QuotaExceededError` when the submission can
        never fit its tenant's allowance — over-quota work is rejected at
        the door, not discovered mid-run."""
        q = self.quota(spec.tenant)
        gpus = self._gpus_of(spec)
        if gpus < 1 or gpus > self.node.num_gpus:
            raise QuotaExceededError(
                f"job requests {gpus} GPUs on a "
                f"{self.node.num_gpus}-GPU node",
                tenant=spec.tenant,
                resource="gpus",
                requested=gpus,
                limit=self.node.num_gpus,
            )
        if q.max_gpus is not None and gpus > q.max_gpus:
            raise QuotaExceededError(
                f"tenant {spec.tenant!r} may use at most {q.max_gpus} "
                f"GPUs, requested {gpus}",
                tenant=spec.tenant,
                resource="gpus",
                requested=gpus,
                limit=q.max_gpus,
            )
        if q.max_device_bytes is not None:
            floor = spec.workload.min_device_bytes(gpus)
            if floor > q.max_device_bytes:
                raise QuotaExceededError(
                    f"workload needs >= {floor} B per device even fully "
                    f"chunked; tenant {spec.tenant!r} is allowed "
                    f"{q.max_device_bytes} B",
                    tenant=spec.tenant,
                    resource="device-memory",
                    requested=floor,
                    limit=q.max_device_bytes,
                )
        job = Job(
            id=f"job-{next(self._ids):04d}",
            spec=spec,
            submit_time=max(self.node.time, spec.arrival),
        )
        job.log(job.submit_time, "submitted")
        self.jobs[job.id] = job
        self._order[job.id] = len(self._order)
        self.tenant_usage.setdefault(spec.tenant, 0.0)
        return job

    def status(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise KeyError(f"unknown job id {job_id!r}") from None

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued (PENDING/PREEMPTED) job. Terminal jobs are left
        untouched; the serial scheduler never exposes a RUNNING job to
        callers, so there is nothing to kill mid-flight."""
        job = self.status(job_id)
        if job.state in (PENDING, PREEMPTED):
            job.state = CANCELLED
            # A job cancelled before its open-loop arrival has
            # submit_time in the future; clamp so end_time - submit_time
            # (the reported queue residency) can never go negative.
            job.end_time = max(self.node.time, job.submit_time)
            job.log(job.end_time, "cancelled")
        return job

    def queue(self) -> list[Job]:
        """Non-terminal jobs in current scheduling preference order."""
        live = [
            j
            for j in self.jobs.values()
            if j.state in (PENDING, PREEMPTED, RUNNING)
        ]
        return sorted(live, key=lambda j: self._score(j, self.node.time))

    # -- fair share ------------------------------------------------------------
    def _score(self, job: Job, now: float) -> tuple:
        """Lower runs first: normalized tenant usage, discounted by how
        long the job has waited (priority aging) and its nice value;
        submission order breaks exact ties deterministically."""
        q = self.quota(job.spec.tenant)
        usage = self.tenant_usage.get(job.spec.tenant, 0.0)
        share = max(q.share, 1e-9)
        wait = max(0.0, now - job.submit_time)
        score = usage / share - self.aging_rate * wait - job.spec.priority
        return (score, self._order[job.id])

    def _eligible(self, job: Job, now: float) -> bool:
        return (
            job.state in (PENDING, PREEMPTED)
            and job.spec.arrival <= now
            and job.not_before <= now
        )

    def _expire_dead_jobs(self) -> None:
        """Fail queued jobs whose deadline already passed, *before* they
        are leased: a dead-on-arrival job would otherwise burn a full
        lease (at least one chunk — the progress guarantee) on work whose
        result is contractually worthless, stealing node time from live
        tenants."""
        now = self.node.time
        for job in self.jobs.values():
            if (
                job.state in (PENDING, PREEMPTED)
                and job.spec.deadline is not None
                and now > job.spec.deadline
            ):
                e = DeadlineExceededError(
                    f"job {job.id} deadline t={job.spec.deadline:.6g} "
                    f"expired before it could start (now t={now:.6g})",
                    job_id=job.id,
                    deadline=job.spec.deadline,
                    now=now,
                )
                self._fail(
                    job,
                    e,
                    f"deadline t={job.spec.deadline:.6g} expired while "
                    f"queued",
                )

    def _pick(self) -> Optional[Job]:
        now = self.node.time
        candidates = [j for j in self.jobs.values() if self._eligible(j, now)]
        if not candidates:
            return None
        return min(candidates, key=lambda j: self._score(j, now))

    def _next_eligibility(self) -> Optional[float]:
        """Earliest future time a queued job becomes eligible (arrival or
        fault backoff), or None if the queue is truly empty."""
        times = [
            max(j.spec.arrival, j.not_before)
            for j in self.jobs.values()
            if j.state in (PENDING, PREEMPTED)
        ]
        return min(times) if times else None

    # -- scheduling loop -------------------------------------------------------
    def _idle_advance(self, to: float) -> None:
        """Advance the node clock to ``to`` in one hop. The host clock is
        advanced by ``to - host_time`` (not ``to - node.time``): a
        partially drained lease leaves the engine clock ahead of the host
        clock, and stepping by the node-time delta would then creep the
        host clock toward ``to`` one sliver per call — thousands of idle
        hops for a closely spaced serving trace."""
        if to > self.node.host_time:
            self.node.host_advance(to - self.node.host_time)

    def step(self) -> Optional[Job]:
        """One scheduling decision: run the best eligible job for one
        lease (to completion, preemption, or failure). Returns the job, or
        None when nothing is eligible (idle-advances the clock to the next
        arrival/backoff expiry if one exists). The idle advance is an
        iterative loop: recursing once per future arrival overflows the
        interpreter stack on serving-scale traces."""
        while True:
            self._expire_dead_jobs()
            job = self._pick()
            if job is not None:
                self._run_lease(job)
                return job
            nxt = self._next_eligibility()
            if nxt is None or nxt <= self.node.time:
                return None
            self._idle_advance(nxt)

    def run(self) -> None:
        """Drain the queue: step until no job is pending or preempted."""
        while self.step() is not None:
            pass

    def step_until(self, horizon: float) -> list[Job]:
        """Arrival-driven stepping: run every lease that becomes eligible
        up to simulated time ``horizon``, then stop with the clock at
        ``max(node.time, horizon)`` — never idle-advancing past it.

        This is the open-loop injection hook: a traffic generator
        alternates ``submit`` (with future ``arrival`` stamps) and
        ``step_until(now)`` without handing the server an excuse to race
        ahead of the part of the trace it has seen. Returns the jobs run,
        in execution order."""
        ran: list[Job] = []
        while True:
            self._expire_dead_jobs()
            job = self._pick()
            if job is not None:
                self._run_lease(job)
                ran.append(job)
                continue
            nxt = self._next_eligibility()
            if nxt is None or nxt > horizon:
                break
            if nxt <= self.node.time:
                break
            self._idle_advance(nxt)
        if horizon > self.node.time:
            self._idle_advance(horizon)
            self._expire_dead_jobs()
        return ran

    # -- one lease -------------------------------------------------------------
    def _others_waiting(self, job: Job) -> bool:
        now = self.node.time
        return any(
            self._eligible(j, now) for j in self.jobs.values() if j is not job
        )

    def _run_lease(self, job: Job) -> None:
        node = self.node
        spec = job.spec
        q = self.quota(spec.tenant)
        devices = tuple(range(self._gpus_of(spec)))
        lease_start = node.time
        # Plan-relative clock: the job has lived `sim_time_used` seconds
        # of execution so far, so its fault plan's t=0 maps to
        # `lease_start - sim_time_used` on the node's clock.
        node.begin_lease(
            faults=spec.faults,
            epoch=lease_start - job.sim_time_used,
            capacity=q.max_device_bytes,
            devices=devices,
        )
        sched = Scheduler(node, devices=devices)
        resumed = job.state == PREEMPTED or job.requeues > 0
        job.state = RUNNING
        if job.start_time is None:
            job.start_time = lease_start
        job.log(
            lease_start,
            f"resumed at iteration {spec.workload.completed}"
            if resumed
            else "started",
        )
        try:
            spec.workload.bind(sched)
            self._drive(job, sched, lease_start)
        except UnrecoverableError as e:
            self._requeue_after_fault(job, e)
        except CapacityError as e:
            self._fail(job, e, f"capacity: {e}")
        except BaseException as e:
            # Any other escape (a workload bug, a KeyboardInterrupt, an
            # unexpected scheduler error) used to leave the job RUNNING
            # forever — a zombie that haunts queue() and pins its tenant's
            # fair-share score. Settle it as FAILED, then re-raise: the
            # error is the caller's problem, the bookkeeping is ours.
            if job.state == RUNNING:
                self._fail(job, e, f"server error: {e!r}")
            raise
        finally:
            used = node.time - lease_start
            job.sim_time_used += used
            self.tenant_usage[spec.tenant] = (
                self.tenant_usage.get(spec.tenant, 0.0) + used
            )
            sched.release()
            node.end_lease()

    def _drive(self, job: Job, sched: Scheduler, lease_start: float) -> None:
        """Chunk loop of one lease; every lap starts and ends at a
        checkpoint boundary (host state complete)."""
        node = self.node
        spec = job.spec
        q = self.quota(spec.tenant)
        wl = spec.workload
        first = True
        while not wl.finished:
            # Guarantee progress: at least one chunk runs per lease, so a
            # pathological slice cannot livelock the queue.
            if not first and self._slice_expired(job, lease_start):
                self._preempt(job)
                return
            wl.run_chunk(sched)
            first = False
            now = node.time
            used = job.sim_time_used + (now - lease_start)
            if q.max_sim_time is not None and used > q.max_sim_time:
                e = QuotaExceededError(
                    f"job {job.id} consumed {used:.6g}s simulated "
                    f"execution time; tenant {spec.tenant!r} allows "
                    f"{q.max_sim_time:.6g}s",
                    tenant=spec.tenant,
                    resource="sim-time",
                    requested=used,
                    limit=q.max_sim_time,
                )
                self._fail(job, e, f"sim-time quota: {used:.6g}s")
                return
            if spec.deadline is not None and now > spec.deadline:
                e = DeadlineExceededError(
                    f"job {job.id} missed its deadline "
                    f"t={spec.deadline:.6g} (now t={now:.6g})",
                    job_id=job.id,
                    deadline=spec.deadline,
                    now=now,
                )
                self._fail(job, e, f"deadline missed at t={now:.6g}")
                return
        job.state = DONE
        job.end_time = node.time
        job.log(node.time, "completed")

    def _slice_expired(self, job: Job, lease_start: float) -> bool:
        if self.time_slice is None:
            return False
        if self.node.time - lease_start < self.time_slice:
            return False
        return self._others_waiting(job)

    def _preempt(self, job: Job) -> None:
        now = self.node.time
        wl = job.spec.workload
        err = PreemptedError(
            f"job {job.id} preempted at iteration {wl.completed} "
            f"(t={now:.6g})",
            job_id=job.id,
            at_iteration=wl.completed,
            time=now,
        )
        job.state = PREEMPTED
        job.preemptions += 1
        job.last_preemption = err
        job.log(now, f"preempted at iteration {wl.completed}")

    def _requeue_after_fault(self, job: Job, err: UnrecoverableError) -> None:
        now = self.node.time
        job.requeues += 1
        if job.requeues > self.max_requeues:
            self._fail(
                job, err, f"failed for good after {self.max_requeues} requeues"
            )
            return
        backoff = min(
            self.requeue_base * (2.0 ** (job.requeues - 1)), self.requeue_cap
        )
        job.not_before = now + backoff
        job.state = PENDING
        job.log(
            now,
            f"unrecoverable fault; requeued with backoff {backoff:.6g}s "
            f"(attempt {job.requeues})",
        )

    def _fail(self, job: Job, err: BaseException, note: str) -> None:
        job.state = FAILED
        job.error = err
        # Clamp like cancel(): a job failed before its open-loop arrival
        # (e.g. an already-expired deadline) must not report a negative
        # queue residency.
        job.end_time = max(self.node.time, job.submit_time)
        job.log(job.end_time, f"failed: {note}")

    # -- reporting -------------------------------------------------------------
    def fairness(self) -> float:
        """Jain's fairness index over share-normalized tenant usage
        (1.0 = perfectly fair; 1/n = one tenant got everything)."""
        xs = [
            self.tenant_usage[t] / max(self.quota(t).share, 1e-9)
            for t in sorted(self.tenant_usage)
        ]
        xs = [x for x in xs if x > 0.0] or [1.0]
        n = len(xs)
        s, s2 = sum(xs), sum(x * x for x in xs)
        return (s * s) / (n * s2) if s2 > 0 else 1.0
