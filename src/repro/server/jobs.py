"""Job, tenant and quota records of the multi-tenant server (DESIGN.md §13).

A *job* is one tenant's request to run an :class:`~repro.server.workloads.
Workload` on some of the node's GPUs. The server assigns each submission a
unique id (``job-0001``, ...) and tracks it through the state machine::

    PENDING ──> RUNNING ──> DONE
       ^           │
       │           ├──> PREEMPTED ──> (PENDING)      time slice expired
       │           ├──> (PENDING, backoff)           unrecoverable fault
       │           └──> FAILED                       quota / deadline /
       └── CANCELLED (from PENDING or PREEMPTED)     capacity / requeues

Every transition is appended to :attr:`Job.history` with its simulated
time, so tests and the bench can assert the exact sequence of events a
schedule produced (and that two runs produce the same sequence).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.faults import FaultPlan

    from repro.server.workloads import Workload

#: Job states (plain strings: they print well in queue tables).
PENDING = "PENDING"
RUNNING = "RUNNING"
PREEMPTED = "PREEMPTED"
DONE = "DONE"
FAILED = "FAILED"
CANCELLED = "CANCELLED"


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant resource allowances, enforced by admission control and
    at runtime (DESIGN.md §13).

    Attributes:
        max_gpus: Most GPUs a single job may request (``None`` = node
            size).
        max_device_bytes: Per-device memory allowance. Enforced by
            clamping device capacity during the tenant's leases, so the
            §10 pressure ladder (eviction, out-of-core chunking) engages
            below the clamp instead of the job dying; only an irreducible
            footprint fails (``CapacityError``).
        max_sim_time: Total simulated *execution* seconds a job may
            consume across all its leases (queue wait is free). Exceeding
            it kills the job with ``QuotaExceededError``.
        share: Fair-share weight of the tenant (2.0 = entitled to twice
            the GPU-seconds of a share-1.0 tenant under contention).
    """

    max_gpus: Optional[int] = None
    max_device_bytes: Optional[int] = None
    max_sim_time: Optional[float] = None
    share: float = 1.0


@dataclass
class JobSpec:
    """One submission: what to run, for whom, under which constraints.

    Attributes:
        workload: The :class:`~repro.server.workloads.Workload` to run.
            Its host-resident arrays double as the checkpoint.
        tenant: Tenant name (quota and fair-share accounting key).
        name: Human-readable job name for queue listings.
        gpus: Devices requested (``None`` = every GPU of the node).
        priority: Intra-tenant nice value; higher runs earlier among the
            same tenant's jobs. Fair share dominates across tenants.
        deadline: Absolute simulated-time completion deadline (``None`` =
            none). Queue wait counts toward it.
        arrival: Earliest simulated time the job may start (open-loop
            traffic injection for the bench; 0.0 = immediately).
        faults: The tenant's private :class:`FaultPlan`, active only
            during this job's leases (per-tenant fault domain). Times in
            the plan are job-relative.
    """

    workload: "Workload"
    tenant: str = "default"
    name: str = "job"
    gpus: Optional[int] = None
    priority: float = 0.0
    deadline: Optional[float] = None
    arrival: float = 0.0
    faults: "FaultPlan | None" = None


@dataclass
class Job:
    """Server-side record of one submission (returned by ``submit``)."""

    id: str
    spec: JobSpec
    state: str = PENDING
    submit_time: float = 0.0
    #: First time the job ever ran (queue-wait endpoint).
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    #: Simulated execution seconds consumed across all leases.
    sim_time_used: float = 0.0
    #: Cooperative (time-slice) preemptions suffered.
    preemptions: int = 0
    #: Fault-driven requeues suffered (each backs off exponentially).
    requeues: int = 0
    #: Earliest simulated time the job may run again (fault backoff).
    not_before: float = 0.0
    #: ``(sim_time, event)`` transition log, e.g. ``(0.4, "preempted at
    #: iteration 6")`` — the determinism assertions compare these.
    history: list[tuple[float, str]] = field(default_factory=list)
    #: Terminal error (FAILED jobs).
    error: Optional[BaseException] = None
    #: Most recent :class:`~repro.errors.PreemptedError` (control-flow
    #: record, not terminal; the job resumes from its checkpoint).
    last_preemption: Optional[BaseException] = None

    def log(self, time: float, event: str) -> None:
        self.history.append((round(float(time), 9), event))

    @property
    def queue_wait(self) -> Optional[float]:
        """Seconds from submission to first run (None if never ran)."""
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    def row(self) -> list[str]:
        """One ``mgpu_queue``-style listing row."""
        s = self.spec
        return [
            self.id,
            s.tenant,
            s.name,
            self.state,
            str(s.gpus if s.gpus is not None else "all"),
            f"{self.spec.workload.completed}/{self.spec.workload.iterations}",
            f"{self.sim_time_used:.4g}s",
            str(self.preemptions),
        ]


_counter = itertools.count(1)


def fresh_job_id(counter=None) -> str:
    """``job-0001``-style unique id (per-server counters in practice)."""
    n = next(counter if counter is not None else _counter)
    return f"job-{n:04d}"
