"""Command line for the job server: ``python -m repro.server``.

In the spirit of ``mgpu_srun``/``mgpu_queue``/``mgpu_cancel``: submits a
batch of jobs to a fresh :class:`~repro.server.JobServer`, drives the
scheduling loop one decision at a time, and prints ``mgpu_queue``-style
tables as the schedule unfolds.

Two input modes:

* default — a built-in three-tenant demo (GoL, histogram, SGEMM) with a
  time slice small enough to force preemptions; every finished job's
  output is verified against the workload's numpy reference.
* ``--jobs FILE.json`` — a JSON list of submissions, e.g.::

      [{"workload": "gol", "tenant": "alice", "name": "life",
        "size": 64, "iterations": 8, "gpus": 2, "priority": 1.0},
       {"workload": "sgemm", "tenant": "bob", "iterations": 4}]

  Recognized workload names are in ``repro.server.WORKLOADS``; remaining
  keys go to the workload constructor (``size``, ``iterations``, ...).
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.bench.reporting import fmt_table
from repro.errors import QuotaExceededError
from repro.server.jobs import JobSpec, TenantQuota
from repro.server.server import JobServer
from repro.server.workloads import WORKLOADS

QUEUE_HEADER = [
    "JOBID", "TENANT", "NAME", "STATE", "GPUS", "ITER", "SIMTIME", "PREEMPT",
]


def queue_table(srv: JobServer, title: str) -> str:
    rows = [j.row() for _, j in sorted(srv.jobs.items())]
    return fmt_table(title, QUEUE_HEADER, rows)


def demo_specs() -> list[JobSpec]:
    return [
        JobSpec(WORKLOADS["gol"](size=48, iterations=8),
                tenant="alice", name="life", gpus=2, priority=0.0),
        JobSpec(WORKLOADS["histogram"](size=64, iterations=6),
                tenant="bob", name="hist", gpus=2),
        JobSpec(WORKLOADS["sgemm"](size=32, iterations=4),
                tenant="carol", name="chain", gpus=2),
        # Over-quota straggler: carol is capped at 2 GPUs below.
        JobSpec(WORKLOADS["gol"](size=48, iterations=2),
                tenant="carol", name="greedy", gpus=4),
    ]


def load_specs(path: str) -> list[JobSpec]:
    with open(path) as f:
        entries = json.load(f)
    specs = []
    for e in entries:
        e = dict(e)
        factory = WORKLOADS[e.pop("workload")]
        meta = {
            k: e.pop(k)
            for k in ("tenant", "name", "gpus", "priority", "deadline",
                      "arrival")
            if k in e
        }
        specs.append(JobSpec(factory(**e), **meta))
    return specs


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Run a multi-tenant job-server scenario "
        "(submit/queue/cancel, quotas, fair share, preemption).",
    )
    parser.add_argument(
        "--jobs", metavar="FILE.json",
        help="submissions to run (default: built-in three-tenant demo)",
    )
    parser.add_argument(
        "--gpus", type=int, default=4, help="node size (default: %(default)s)"
    )
    parser.add_argument(
        "--time-slice", type=float, default=2e-4, metavar="SECONDS",
        help="simulated-time slice before cooperative preemption "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="print only the final table and verdict",
    )
    args = parser.parse_args(argv)

    srv = JobServer(
        num_gpus=args.gpus,
        time_slice=args.time_slice,
        quotas={
            "alice": TenantQuota(share=2.0),
            "carol": TenantQuota(max_gpus=2),
        },
    )
    specs = load_specs(args.jobs) if args.jobs else demo_specs()
    rejected = 0
    for spec in specs:
        try:
            job = srv.submit(spec)
        except QuotaExceededError as e:
            rejected += 1
            print(f"REJECTED {spec.tenant}/{spec.name}: {e}")
        else:
            if not args.quiet:
                print(f"submitted {job.id} ({spec.tenant}/{spec.name})")
    if not args.quiet:
        print(queue_table(srv, "queue after submission"))
    while srv.step() is not None:
        if not args.quiet:
            print(queue_table(srv, f"t={srv.node.time:.6g}s"))
    print(queue_table(srv, f"final state (t={srv.node.time:.6g}s)"))
    print(f"fairness (Jain) = {srv.fairness():.3f}")

    failures = 0
    for job in srv.jobs.values():
        if job.state != "DONE":
            continue
        wl = job.spec.workload
        got, want = wl.result(), wl.reference()
        ok = (
            np.array_equal(got, want)
            if got.dtype.kind in "iub"
            else np.allclose(got, want, rtol=1e-5, atol=1e-6)
        )
        if not ok:
            failures += 1
            print(f"MISMATCH {job.id}: output differs from reference")
    done = sum(1 for j in srv.jobs.values() if j.state == "DONE")
    print(
        f"{done} job(s) DONE, {rejected} rejected at admission, "
        f"{failures} result mismatch(es)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
