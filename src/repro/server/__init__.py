"""Multi-tenant job server over one simulated node (DESIGN.md §13).

Promotes the library into a long-running service: Slurm-like
``submit``/``queue``/``cancel``/``status``, per-tenant quotas and fault
domains, fair-share scheduling with priority aging, and preemptive
checkpoint/requeue that resumes bit-identically.

Quick start::

    from repro.server import JobServer, JobSpec, TenantQuota, GoLWorkload

    srv = JobServer(num_gpus=4, time_slice=2e-4,
                    quotas={"alice": TenantQuota(max_gpus=2)})
    job = srv.submit(JobSpec(GoLWorkload(size=64, iterations=8),
                             tenant="alice", gpus=2))
    srv.run()
    assert srv.status(job.id).state == "DONE"

CLI: ``python -m repro.server`` (see ``--help``) runs a self-verifying
demo scenario or a JSON-described batch, printing ``mgpu_queue``-style
tables.
"""

from repro.server.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    PREEMPTED,
    RUNNING,
    Job,
    JobSpec,
    TenantQuota,
)
from repro.server.server import JobServer, solo_run
from repro.server.workloads import (
    WORKLOADS,
    GoLGraphWorkload,
    GoLWorkload,
    HistogramWorkload,
    SgemmWorkload,
    Workload,
)

__all__ = [
    "JobServer",
    "Job",
    "JobSpec",
    "TenantQuota",
    "solo_run",
    "Workload",
    "GoLWorkload",
    "GoLGraphWorkload",
    "HistogramWorkload",
    "SgemmWorkload",
    "WORKLOADS",
    "PENDING",
    "RUNNING",
    "PREEMPTED",
    "DONE",
    "FAILED",
    "CANCELLED",
]
