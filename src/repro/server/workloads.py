"""Checkpointable iterative workloads for the job server (DESIGN.md §13).

A :class:`Workload` owns *host-resident* state that is, at every
checkpoint boundary, a complete description of the computation so far —
the job server's preemption model is exactly "the host arrays plus an
iteration counter *are* the checkpoint". The contract:

* :meth:`bind` attaches fresh datums (bound to the persistent host
  arrays) to a scheduler and runs the ``AnalyzeCall`` declarations. It is
  called once per *lease*; after a preemption the next lease's scheduler
  re-uploads from host and continues from ``completed`` iterations.
* :meth:`run_chunk` advances up to ``checkpoint_every`` iterations and
  gathers results back, leaving host state checkpoint-complete again.
  Preemption happens only between chunks, so nothing in flight is lost.
* :meth:`result` returns the output array; :meth:`reference` computes the
  same thing with plain numpy. Every payload is a pure function of host
  state, so a preempted-and-resumed run is bit-identical to a solo run —
  the resume costs extra H2D distribution (the measured preemption
  overhead), never different numbers.

Three app families cover the paper's pattern spectrum: Game of Life
(Window stencil), histogram (Window + ReductiveStatic), and a chained
SGEMM over the unmodified-CUBLAS path (Block patterns). The GoL variant
optionally re-captures an iteration graph (DESIGN.md §12) each lease.
"""

from __future__ import annotations

import numpy as np

from repro.core import Grid, Matrix, Scheduler, Vector
from repro.kernels.game_of_life import (
    gol_containers,
    gol_reference_step,
    make_gol_kernel,
)
from repro.kernels.histogram import (
    histogram_containers,
    histogram_grid,
    make_histogram_kernel,
)
from repro.libs.cublas import make_sgemm_routine, sgemm_containers


class Workload:
    """Base checkpointable workload (see module docstring)."""

    #: Kind tag for queue listings and JSON reports.
    kind = "workload"

    def __init__(self, iterations: int, checkpoint_every: int = 1):
        if iterations < 1:
            raise ValueError("need at least one iteration")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.iterations = int(iterations)
        self.checkpoint_every = int(checkpoint_every)
        #: Iterations whose results are safely in host memory.
        self.completed = 0

    @property
    def finished(self) -> bool:
        return self.completed >= self.iterations

    # -- lease lifecycle ----------------------------------------------------
    def bind(self, sched: Scheduler) -> None:
        raise NotImplementedError

    def run_chunk(self, sched: Scheduler) -> int:
        """Advance up to ``checkpoint_every`` iterations; returns how many
        ran. Host state is checkpoint-complete on return."""
        raise NotImplementedError

    # -- results ------------------------------------------------------------
    def result(self) -> np.ndarray:
        raise NotImplementedError

    def reference(self) -> np.ndarray:
        """Plain-numpy recomputation of :meth:`result` (self-verification)."""
        raise NotImplementedError

    # -- admission estimate ---------------------------------------------------
    def min_device_bytes(self, gpus: int) -> int:
        """Irreducible per-device footprint in bytes: what even maximal
        out-of-core chunking (DESIGN.md §10) must keep resident. Admission
        control rejects a tenant whose memory quota cannot cover it."""
        return 0


class GoLWorkload(Workload):
    """Game of Life, one tick per iteration, ping-ponging two boards.

    Host state: ``boards[completed % 2]`` holds the current board. Both
    boards persist across leases; parity decides the invoke direction
    after a resume, so no copies are needed at checkpoint time.
    """

    kind = "gol"

    def __init__(
        self,
        size: int = 64,
        iterations: int = 8,
        checkpoint_every: int = 1,
        seed: int = 0,
    ):
        super().__init__(iterations, checkpoint_every)
        self.size = int(size)
        rng = np.random.default_rng(seed)
        self._initial = (rng.random((size, size)) < 0.35).astype(np.int32)
        self.boards = [self._initial.copy(), np.zeros_like(self._initial)]
        self._datums: list[Matrix] | None = None
        self._kernel = make_gol_kernel()

    def bind(self, sched: Scheduler) -> None:
        a = Matrix(self.size, self.size, np.int32, "gol.A").bind(
            self.boards[0]
        )
        b = Matrix(self.size, self.size, np.int32, "gol.B").bind(
            self.boards[1]
        )
        self._datums = [a, b]
        sched.analyze_call(self._kernel, *gol_containers(a, b))
        sched.analyze_call(self._kernel, *gol_containers(b, a))

    def run_chunk(self, sched: Scheduler) -> int:
        k = min(self.checkpoint_every, self.iterations - self.completed)
        d = self._datums
        for i in range(self.completed, self.completed + k):
            src, dst = d[i % 2], d[(i + 1) % 2]
            sched.invoke(self._kernel, *gol_containers(src, dst))
            sched.gather(dst)
        self.completed += k
        return k

    def result(self) -> np.ndarray:
        return self.boards[self.completed % 2].copy()

    def reference(self) -> np.ndarray:
        board = self._initial.copy()
        for _ in range(self.iterations):
            board = gol_reference_step(board)
        return board

    def min_device_bytes(self, gpus: int) -> int:
        # Chunked replay stages a handful of block rows of each board;
        # 8 rows (with halo) of both boards is a conservative floor.
        return 2 * 8 * self.size * np.dtype(np.int32).itemsize


class GoLGraphWorkload(GoLWorkload):
    """GoL driven through an iteration graph (DESIGN.md §12): each lease
    re-captures one steady-state ping-pong period and replays it.

    Chunks are even-sized. The first period of every lease runs eagerly
    (it pays the host-to-device distribution, which is not steady state),
    the second is captured, and the remainder of the lease replays the
    graph. A preemption releases the scheduler, which spoils the graph —
    the next lease demotes to eager and re-captures, bit-identically.
    """

    kind = "gol-graph"

    def __init__(
        self,
        size: int = 64,
        iterations: int = 12,
        checkpoint_every: int = 6,
        seed: int = 0,
    ):
        if iterations % 2 or checkpoint_every % 2:
            raise ValueError(
                "graph workload needs even iterations/checkpoint_every "
                "(the captured period is one two-tick ping-pong)"
            )
        super().__init__(size, iterations, checkpoint_every, seed)
        self.graph = None
        self._graph_sched: Scheduler | None = None
        #: Diagnostics: captures performed / periods replayed via graph.
        self.captures = 0
        self.replayed_periods = 0

    def _pair(self, sched: Scheduler, i: int) -> None:
        d = self._datums
        sched.invoke(self._kernel, *gol_containers(d[i % 2], d[(i + 1) % 2]))
        sched.invoke(
            self._kernel, *gol_containers(d[(i + 1) % 2], d[i % 2])
        )

    def run_chunk(self, sched: Scheduler) -> int:
        k = min(self.checkpoint_every, self.iterations - self.completed)
        i = self.completed
        pairs = k // 2
        if self._graph_sched is not sched:
            # Fresh lease: the previous lease's graph (if any) belongs to
            # a released scheduler — demote to eager and re-capture.
            self.graph = None
            self._graph_sched = sched
        while pairs:
            if self.graph is not None:
                self.graph.launch(pairs)
                self.replayed_periods += pairs
                i += 2 * pairs
                pairs = 0
            elif i == self.completed and self._datums is not None:
                # First period of the lease: eager warm-up (pays the
                # re-distribution of host state).
                self._pair(sched, i)
                sched.wait_all()
                i += 2
                pairs -= 1
            else:
                with sched.capture() as g:
                    self._pair(sched, i)
                self.graph = g
                self.captures += 1
                i += 2
                pairs -= 1
        # One gather per chunk: the checkpoint. Parity is even, so the
        # current board is boards[i % 2] == boards[0 or 1] consistently.
        sched.gather(self._datums[i % 2])
        self.completed = i
        return k


class HistogramWorkload(Workload):
    """256-bin histogram of a static image, accumulated over iterations.

    Each iteration histograms the image on the devices and the gathered
    result is added into a host accumulator — the accumulator plus
    ``completed`` is the checkpoint. (Every iteration produces the same
    histogram; the accumulation makes progress observable and keeps the
    checkpoint non-trivial.)
    """

    kind = "histogram"

    def __init__(
        self,
        size: int = 96,
        bins: int = 256,
        iterations: int = 6,
        checkpoint_every: int = 1,
        seed: int = 0,
    ):
        super().__init__(iterations, checkpoint_every)
        self.size = int(size)
        self.bins = int(bins)
        rng = np.random.default_rng(seed)
        self.image = rng.integers(
            0, bins, size=(size, size), dtype=np.int64
        ).astype(np.uint8)
        self.acc = np.zeros(bins, dtype=np.int64)
        self._hist_host = np.zeros(bins, dtype=np.int32)
        self._kernel = make_histogram_kernel("maps")
        self._image_d: Matrix | None = None
        self._hist_d: Vector | None = None
        self._grid: Grid | None = None

    def bind(self, sched: Scheduler) -> None:
        self._image_d = Matrix(
            self.size, self.size, np.uint8, "hist.image"
        ).bind(self.image)
        self._hist_d = Vector(self.bins, np.int32, "hist.out").bind(
            self._hist_host
        )
        self._grid = histogram_grid(self._image_d)
        sched.analyze_call(
            self._kernel,
            *histogram_containers(self._image_d, self._hist_d),
            grid=self._grid,
        )

    def run_chunk(self, sched: Scheduler) -> int:
        k = min(self.checkpoint_every, self.iterations - self.completed)
        for _ in range(k):
            sched.invoke(
                self._kernel,
                *histogram_containers(self._image_d, self._hist_d),
                grid=self._grid,
            )
            sched.gather(self._hist_d)
            self.acc += self._hist_host
        self.completed += k
        return k

    def result(self) -> np.ndarray:
        return self.acc.copy()

    def reference(self) -> np.ndarray:
        one = np.bincount(
            self.image.ravel().astype(np.int64), minlength=self.bins
        ).astype(np.int64)
        return one * self.iterations

    def min_device_bytes(self, gpus: int) -> int:
        # A few image block rows plus the 1 KiB partial histogram.
        return 8 * self.size + self.bins * np.dtype(np.int32).itemsize


class SgemmWorkload(Workload):
    """Chained SGEMM ``X <- X @ B`` over unmodified CUBLAS (§4.6).

    Host state: ``mats[completed % 2]`` holds the current X; ``B`` is
    static. ``B`` is scaled to unit spectral norm-ish magnitude so the
    chain stays bounded in float32.
    """

    kind = "sgemm"

    def __init__(
        self,
        size: int = 48,
        iterations: int = 4,
        checkpoint_every: int = 1,
        seed: int = 0,
    ):
        super().__init__(iterations, checkpoint_every)
        self.size = int(size)
        rng = np.random.default_rng(seed)
        self._x0 = rng.standard_normal((size, size)).astype(np.float32)
        self.b_host = (
            rng.standard_normal((size, size)).astype(np.float32) / size
        )
        self.mats = [self._x0.copy(), np.zeros_like(self._x0)]
        self._routine = make_sgemm_routine()
        self._datums: list[Matrix] | None = None
        self._b_d: Matrix | None = None

    def bind(self, sched: Scheduler) -> None:
        x = Matrix(self.size, self.size, np.float32, "gemm.X").bind(
            self.mats[0]
        )
        y = Matrix(self.size, self.size, np.float32, "gemm.Y").bind(
            self.mats[1]
        )
        b = Matrix(self.size, self.size, np.float32, "gemm.B").bind(
            self.b_host
        )
        self._datums = [x, y]
        self._b_d = b
        sched.analyze_call(self._routine, *sgemm_containers(x, b, y))
        sched.analyze_call(self._routine, *sgemm_containers(y, b, x))

    def run_chunk(self, sched: Scheduler) -> int:
        k = min(self.checkpoint_every, self.iterations - self.completed)
        d, b = self._datums, self._b_d
        for i in range(self.completed, self.completed + k):
            src, dst = d[i % 2], d[(i + 1) % 2]
            sched.invoke_unmodified(
                self._routine, *sgemm_containers(src, b, dst)
            )
            sched.gather(dst)
        self.completed += k
        return k

    def result(self) -> np.ndarray:
        return self.mats[self.completed % 2].copy()

    def reference(self) -> np.ndarray:
        x = self._x0.copy()
        for _ in range(self.iterations):
            x = x @ self.b_host
        return x

    def min_device_bytes(self, gpus: int) -> int:
        # The Block2DTransposed operand (B) must be fully resident on
        # every participating device; X/C stream through in stripes.
        b_bytes = self.size * self.size * np.dtype(np.float32).itemsize
        stripe = 8 * self.size * np.dtype(np.float32).itemsize
        return b_bytes + 2 * stripe


#: Name -> factory, for the CLI's ``--jobs`` JSON and the bench.
WORKLOADS = {
    "gol": GoLWorkload,
    "gol-graph": GoLGraphWorkload,
    "histogram": HistogramWorkload,
    "sgemm": SgemmWorkload,
}
