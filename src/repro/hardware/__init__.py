"""Hardware models: GPU specs (Table 3), calibration, node topology."""

from repro.hardware.calibration import (
    DEFAULT_INTERCONNECT,
    GpuCalibration,
    InterconnectCalibration,
    calibration_for,
)
from repro.hardware.specs import (
    GTX_780,
    GTX_980,
    PAPER_GPUS,
    TITAN_BLACK,
    Architecture,
    GPUSpec,
    gpu_by_name,
)
from repro.hardware.topology import HOST, Link, NodeTopology

__all__ = [
    "Architecture",
    "GPUSpec",
    "GTX_780",
    "TITAN_BLACK",
    "GTX_980",
    "PAPER_GPUS",
    "gpu_by_name",
    "GpuCalibration",
    "InterconnectCalibration",
    "calibration_for",
    "DEFAULT_INTERCONNECT",
    "NodeTopology",
    "Link",
    "HOST",
]
