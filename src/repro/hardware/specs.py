"""GPU device specifications for the simulated testbeds.

The paper's experimental setup (Table 3) uses three identical quad-GPU
nodes, one per GPU model:

=====================  ========  ==============  =======
Model (architecture)   Memory    SMs x cores     Peak BW
=====================  ========  ==============  =======
GTX 780 (Kepler)       3 GiB     12 x 192        288 GB/s
Titan Black (Kepler)   6 GiB     15 x 192        336 GB/s
GTX 980 (Maxwell)      4 GiB     16 x 128        224 GB/s
=====================  ========  ==============  =======

SM/core counts come straight from Table 3; clocks and bandwidths from the
vendor datasheets. ``peak_sp_gflops`` is the standard
``2 * cores * clock`` single-precision FMA peak.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.utils.units import GIB


class Architecture(enum.Enum):
    """GPU microarchitecture generations relevant to the paper."""

    KEPLER = "Kepler"
    MAXWELL = "Maxwell"


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU model.

    Attributes:
        name: Marketing name, e.g. ``"GTX 780"``.
        architecture: Microarchitecture generation.
        num_sms: Number of streaming multiprocessors.
        cores_per_sm: CUDA cores per SM.
        core_clock_ghz: Sustained boost clock in GHz.
        global_memory_bytes: Global memory capacity in bytes.
        mem_bandwidth: Peak global memory bandwidth in bytes/second.
        shared_mem_per_sm: Shared memory per SM in bytes.
        copy_engines: Number of asynchronous copy engines (2 on all three
            models: one per direction, enabling simultaneous bidirectional
            transfers, §2).
    """

    name: str
    architecture: Architecture
    num_sms: int
    cores_per_sm: int
    core_clock_ghz: float
    global_memory_bytes: int
    mem_bandwidth: float
    shared_mem_per_sm: int = 48 * 1024
    copy_engines: int = 2

    @property
    def num_cores(self) -> int:
        return self.num_sms * self.cores_per_sm

    @property
    def peak_sp_gflops(self) -> float:
        """Single-precision FMA peak in GFLOP/s."""
        return 2.0 * self.num_cores * self.core_clock_ghz

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} ({self.architecture.value})"


GTX_780 = GPUSpec(
    name="GTX 780",
    architecture=Architecture.KEPLER,
    num_sms=12,
    cores_per_sm=192,
    core_clock_ghz=0.900,
    global_memory_bytes=3 * GIB,
    mem_bandwidth=288.4e9,
)

TITAN_BLACK = GPUSpec(
    name="Titan Black",
    architecture=Architecture.KEPLER,
    num_sms=15,
    cores_per_sm=192,
    core_clock_ghz=0.980,
    global_memory_bytes=6 * GIB,
    mem_bandwidth=336.0e9,
)

GTX_980 = GPUSpec(
    name="GTX 980",
    architecture=Architecture.MAXWELL,
    num_sms=16,
    cores_per_sm=128,
    core_clock_ghz=1.216,
    global_memory_bytes=4 * GIB,
    mem_bandwidth=224.0e9,
)

#: The three testbeds of Table 3, in paper order.
PAPER_GPUS: tuple[GPUSpec, ...] = (GTX_780, TITAN_BLACK, GTX_980)

_BY_NAME = {s.name: s for s in PAPER_GPUS}


def gpu_by_name(name: str) -> GPUSpec:
    """Look up one of the paper's GPU models by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown GPU model {name!r}; available: {sorted(_BY_NAME)}"
        ) from None
