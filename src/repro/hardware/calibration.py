"""Calibrated performance constants for the simulated testbeds.

Every constant here is either (a) back-derived from a number the paper
reports, (b) taken from a vendor datasheet, or (c) a standard PCI-Express 3
figure. They calibrate the *simulated hardware*; the framework-vs-baseline
deltas in the experiments emerge from modelled mechanisms (data movement,
staging, atomics), not from per-result constants.

Derivations
-----------

* ``sgemm_gflops`` — Table 4 gives native CUBLAS runtimes for a chained
  8192^3 SGEMM: 365.21 / 338.65 / 245.31 ms. One SGEMM is
  ``2 * 8192^3 = 1.0995e12`` FLOP, hence 3010 / 3247 / 4482 GFLOP/s.
* ``global_atomic_rate`` — §5.3 gives the naive 256-bin histogram of an
  8192^2 image (67.1 M atomics) as 6.09 / 6.41 / 30.92 ms, hence 11.02 /
  10.47 / 2.17 G atomics/s. The Maxwell figure is low because GM204 favours
  shared-memory atomics; contended global atomics regressed.
* ``maps_hist_rate`` / ``cub_hist_rate`` — §5.3 reports only orderings
  (MAPS beats CUB on GTX 780; CUB wins on Titan Black and more so on
  GTX 980; all within one order of magnitude of naive-on-Kepler). Rates are
  chosen to honour exactly those orderings.
* ``gol_*_rate`` — §5.2: naive beats MAPS-without-ILP by ~20–50 %
  (architecture dependent) and MAPS-with-ILP beats naive by ~2.42x on all
  architectures, on an 8K^2 board.
* PCIe-3 x16 figures — ~12 GB/s effective peer-to-peer for pinned
  transfers, ~5.5 GB/s for pageable host-staged copies, ~8 us setup latency;
  kernel launch ~7 us. Cross-switch peer traffic crosses the inter-socket
  link (the paper's nodes pair GPUs per CPU) at reduced bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.specs import GPUSpec


@dataclass(frozen=True)
class GpuCalibration:
    """Per-GPU-model calibrated rates (all rates in elements or FLOP /s)."""

    #: Effective large-SGEMM throughput, FLOP/s (from Table 4).
    sgemm_flops: float
    #: Contended 256-bin global-atomic throughput, atomics/s (from §5.3).
    global_atomic_rate: float
    #: MAPS-Multi shared-aggregator histogram rate, elements/s.
    maps_hist_rate: float
    #: CUB histogram rate, elements/s.
    cub_hist_rate: float
    #: Naive (texture-cached, global write) Game-of-Life rate, cells/s.
    gol_naive_rate: float
    #: MAPS shared-memory (no ILP) Game-of-Life rate, cells/s.
    gol_maps_rate: float
    #: MAPS shared-memory + ILP(4x2) Game-of-Life rate, cells/s.
    gol_ilp_rate: float
    #: cuDNN v2 convolution efficiency (fraction of FMA peak).
    cudnn_conv_efficiency: float
    #: Achievable fraction of peak memory bandwidth for streaming kernels.
    stream_efficiency: float = 0.80


_CALIBRATIONS: dict[str, GpuCalibration] = {
    "GTX 780": GpuCalibration(
        sgemm_flops=3010e9,
        global_atomic_rate=11.02e9,
        maps_hist_rate=30.0e9,
        cub_hist_rate=26.0e9,
        gol_naive_rate=5.5e9,
        gol_maps_rate=5.5e9 / 1.20,
        gol_ilp_rate=5.5e9 * 2.42,
        cudnn_conv_efficiency=0.34,
    ),
    "Titan Black": GpuCalibration(
        sgemm_flops=3247e9,
        global_atomic_rate=10.47e9,
        maps_hist_rate=34.0e9,
        cub_hist_rate=40.0e9,
        gol_naive_rate=6.8e9,
        gol_maps_rate=6.8e9 / 1.35,
        gol_ilp_rate=6.8e9 * 2.42,
        cudnn_conv_efficiency=0.34,
    ),
    "GTX 980": GpuCalibration(
        sgemm_flops=4482e9,
        global_atomic_rate=2.17e9,
        maps_hist_rate=42.0e9,
        cub_hist_rate=62.0e9,
        gol_naive_rate=7.5e9,
        gol_maps_rate=7.5e9 / 1.50,
        gol_ilp_rate=7.5e9 * 2.42,
        cudnn_conv_efficiency=0.38,
    ),
}


def calibration_for(spec: GPUSpec) -> GpuCalibration:
    """Calibration constants for one of the paper's GPU models."""
    try:
        return _CALIBRATIONS[spec.name]
    except KeyError:
        raise KeyError(
            f"no calibration for GPU model {spec.name!r}; "
            f"available: {sorted(_CALIBRATIONS)}"
        ) from None


@dataclass(frozen=True)
class InterconnectCalibration:
    """Node-level interconnect and overhead constants (PCIe 3 era)."""

    #: Effective P2P bandwidth between GPUs on the same PCIe switch, B/s.
    p2p_same_switch_bw: float = 12.0e9
    #: Effective P2P bandwidth across switches (through QPI), B/s.
    p2p_cross_switch_bw: float = 9.0e9
    #: Host<->device bandwidth for pinned memory, B/s.
    host_pinned_bw: float = 11.0e9
    #: Host<->device bandwidth for pageable memory (staged memcpy), B/s.
    host_pageable_bw: float = 5.5e9
    #: Fixed per-transfer setup latency, s.
    transfer_latency: float = 8.0e-6
    #: Kernel launch latency, s.
    kernel_launch_latency: float = 7.0e-6
    #: Extra latency for MPI/IPC host-mediated exchange (NMF-mGPU path), s.
    mpi_ipc_latency: float = 30.0e-6
    #: Host-side scheduler overhead per submitted task, s (fixed part).
    scheduler_task_overhead: float = 60.0e-6
    #: Host-side scheduler overhead per container per device, s.
    scheduler_container_overhead: float = 8.0e-6
    #: Host memory bandwidth for combining gathered partials (SIMD
    #: streaming sum over pinned staging buffers), B/s.
    host_aggregation_bw: float = 16.0e9


#: Default interconnect calibration shared by all three testbeds (the paper
#: uses identical node layouts: two PCIe-3 buses, each connecting one GPU
#: pair to one CPU).
DEFAULT_INTERCONNECT = InterconnectCalibration()
