"""Node topology: how GPUs, PCIe switches and the host are wired.

The paper's nodes (§5) hold 4 GPUs: *"two PCI-Express 3 buses directly
connect pairs of GPUs, where each pair is controlled by a different CPU"*.
We model that as two switches with two GPUs each; the switches are joined
through the host's inter-socket link.

A transfer reserves a *path* — the ordered list of :class:`Link` objects it
crosses — for its whole duration, so contention between transfers sharing a
link (e.g. two cross-switch copies both crossing QPI) emerges naturally in
the discrete-event simulator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.hardware.calibration import DEFAULT_INTERCONNECT, InterconnectCalibration


class Loc(enum.IntEnum):
    """Transfer endpoint: a device index (>= 0) or the host."""

    HOST = -1


HOST: int = int(Loc.HOST)


@dataclass(eq=False)
class Link:
    """One shared interconnect segment with a fixed per-direction bandwidth.

    PCIe (and QPI) are full duplex: each link carries independent traffic
    in each direction, which is what lets the GPUs' two copy engines
    overlap an upload with a download (§2). Contention therefore happens
    per ``(link, direction)`` channel.
    """

    name: str
    bandwidth: float  # bytes/second, per direction

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Link({self.name}, {self.bandwidth / 1e9:.1f} GB/s)"


#: Direction constants for :class:`PathSegment`.
UP, DOWN = 0, 1


@dataclass(frozen=True)
class PathSegment:
    """One directed traversal of a link."""

    link: Link
    direction: int  # UP or DOWN

    @property
    def channel(self) -> tuple[int, int]:
        """Hashable contention key: one duplex channel of the link."""
        return (id(self.link), self.direction)


@dataclass
class NodeTopology:
    """Wiring of one multi-GPU node.

    Attributes:
        num_gpus: Number of GPUs in the node (1–8 supported; the paper
            uses 4).
        gpus_per_switch: GPUs sharing one PCIe switch (paper: 2).
        calib: Interconnect calibration constants.
    """

    num_gpus: int
    gpus_per_switch: int = 2
    calib: InterconnectCalibration = field(default_factory=lambda: DEFAULT_INTERCONNECT)
    #: Host CPU sockets (staging memcpy threads); the paper's nodes have
    #: two CPUs regardless of how many of the four GPUs a run uses.
    num_sockets: int = 2

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ValueError("need at least one GPU")
        c = self.calib
        self._uplinks = [
            Link(f"switch{i}-uplink", c.host_pinned_bw)
            for i in range(self.num_switches)
        ]
        self._p2p = [
            Link(f"switch{i}-p2p", c.p2p_same_switch_bw)
            for i in range(self.num_switches)
        ]
        self._qpi = Link("inter-socket", c.p2p_cross_switch_bw)
        # Pageable host transfers stage through host-side memcpy threads —
        # one per CPU socket (== number of switches in the paper's nodes).
        # Pageable traffic beyond that thread count serializes, which is
        # what caps CUBLAS-XT's multi-GPU scaling (§5.4).
        self._pageable = [
            Link(f"pageable-staging{i}", c.host_pageable_bw)
            for i in range(self.num_sockets)
        ]

    @property
    def num_switches(self) -> int:
        return (self.num_gpus + self.gpus_per_switch - 1) // self.gpus_per_switch

    def switch_of(self, device: int) -> int:
        if not 0 <= device < self.num_gpus:
            raise ValueError(f"bad device index {device}")
        return device // self.gpus_per_switch

    def same_switch(self, a: int, b: int) -> bool:
        return self.switch_of(a) == self.switch_of(b)

    # -- path selection ------------------------------------------------------
    def path(
        self, src: int, dst: int, pageable: bool = False
    ) -> list[PathSegment]:
        """Directed link traversals of a transfer from ``src`` to ``dst``.

        ``src``/``dst`` are device indices, or :data:`HOST`. ``pageable``
        selects the slow pageable-memory path for host transfers (an extra
        staging copy through unpinned host memory), used to model
        CUBLAS-XT's host-based API. Uplinks are traversed UP (toward the
        host) on the source side and DOWN (toward the device) on the
        destination side; the per-direction channels make duplex overlap
        possible while same-direction traffic contends.
        """
        if src == dst:
            return []
        if src == HOST or dst == HOST:
            dev = dst if src == HOST else src
            direction = DOWN if src == HOST else UP
            segs = [PathSegment(self._uplinks[self.switch_of(dev)], direction)]
            if pageable:
                segs.append(
                    PathSegment(
                        self._pageable[dev % len(self._pageable)], direction
                    )
                )
            return segs
        if self.same_switch(src, dst):
            return [
                PathSegment(
                    self._p2p[self.switch_of(src)], DOWN if src < dst else UP
                )
            ]
        qpi_dir = DOWN if self.switch_of(src) < self.switch_of(dst) else UP
        return [
            PathSegment(self._uplinks[self.switch_of(src)], UP),
            PathSegment(self._qpi, qpi_dir),
            PathSegment(self._uplinks[self.switch_of(dst)], DOWN),
        ]

    def transfer_time(self, nbytes: int, path: list[PathSegment]) -> float:
        """Latency + serialization time over the path's bottleneck link."""
        if not path:
            return 0.0
        bw = min(seg.link.bandwidth for seg in path)
        return self.calib.transfer_latency + nbytes / bw

    def all_links(self) -> list[Link]:
        return [*self._uplinks, *self._p2p, self._qpi]
