"""Byte/time unit constants and human-readable formatting helpers."""

from __future__ import annotations

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
KIB = 1 << 10
MIB = 1 << 20
GIB = 1 << 30


def fmt_bytes(n: float) -> str:
    """Format a byte count with binary units (``1536 -> '1.50 KiB'``)."""
    n = float(n)
    for unit, div in (("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if abs(n) >= div:
            return f"{n / div:.2f} {unit}"
    return f"{n:.0f} B"


def fmt_time(seconds: float) -> str:
    """Format a duration with an appropriate SI unit."""
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.2f} us"
    return f"{seconds * 1e9:.1f} ns"
