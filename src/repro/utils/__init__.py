"""Shared utilities: rectangle algebra, unit helpers, deterministic RNG."""

from repro.utils.rect import Interval, Rect, bounding_box, coalesce, split_modular
from repro.utils.units import GB, GIB, KB, KIB, MB, MIB, fmt_bytes, fmt_time

__all__ = [
    "Interval",
    "Rect",
    "bounding_box",
    "coalesce",
    "split_modular",
    "KB",
    "MB",
    "GB",
    "KIB",
    "MIB",
    "GIB",
    "fmt_bytes",
    "fmt_time",
]
