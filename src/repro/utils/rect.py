"""N-dimensional half-open rectangle (hyper-rectangle) algebra.

The MAPS-Multi framework reasons about data requirements as axis-aligned
N-dimensional rectangles over datum index space: the Memory Analyzer keeps
per-device *bounding boxes* of requirements (paper §4.2), and the Segment
Location Monitor computes *rectangular intersections* between required
segments and the ``lastOutput`` segments on each device (Algorithm 2,
line 10).

A :class:`Rect` is a tuple of half-open intervals ``[begin, end)`` — one per
dimension, outermost dimension first (C order, matching numpy). Rectangles
are immutable and hashable.

Wrap-around boundary conditions (``WRAP``) produce *source* regions that may
fall outside the datum extent; :func:`split_modular` splits such a rectangle
into in-bounds pieces with modular coordinates, which is how ghost-region
exchanges for periodic stencils are realized.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True, slots=True)
class Interval:
    """A half-open 1-D interval ``[begin, end)``."""

    begin: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.begin:
            raise ValueError(f"interval end {self.end} < begin {self.begin}")

    @property
    def size(self) -> int:
        return self.end - self.begin

    @property
    def empty(self) -> bool:
        return self.end <= self.begin

    def intersect(self, other: "Interval") -> "Interval":
        b = max(self.begin, other.begin)
        e = min(self.end, other.end)
        if e < b:
            e = b
        return Interval(b, e)

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both (empty intervals are identities)."""
        if self.empty:
            return other
        if other.empty:
            return self
        return Interval(min(self.begin, other.begin), max(self.end, other.end))

    def contains(self, other: "Interval") -> bool:
        if other.empty:
            return True
        return self.begin <= other.begin and other.end <= self.end

    def shift(self, offset: int) -> "Interval":
        return Interval(self.begin + offset, self.end + offset)

    def expand(self, lo: int, hi: int | None = None) -> "Interval":
        """Grow by ``lo`` below and ``hi`` above (``hi`` defaults to ``lo``)."""
        if hi is None:
            hi = lo
        return Interval(self.begin - lo, self.end + hi)

    def clamp(self, lo: int, hi: int) -> "Interval":
        b = min(max(self.begin, lo), hi)
        e = min(max(self.end, lo), hi)
        return Interval(b, e)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.begin},{self.end})"


class Rect:
    """An immutable N-dimensional half-open rectangle.

    Construct from per-dimension ``(begin, end)`` pairs::

        Rect((0, 4), (2, 8))          # rows [0,4), cols [2,8)
        Rect.from_shape((4, 6))       # [0,4) x [0,6)

    The empty rectangle of dimension *n* is any rect with a zero-size
    dimension; all empty rects of the same dimensionality compare unequal in
    coordinates but behave identically under intersection/union logic via
    :attr:`empty`.

    Rects are hot objects — the scheduler evaluates thousands per
    invocation — so the derived values the functional payloads recompute
    most (:attr:`size` and the origin-free :meth:`slices` tuple) are cached
    lazily. Caching is safe because the coordinate tuple is immutable;
    equality and hashing (needed so invocation plans can key on rects) only
    consult the coordinates.
    """

    __slots__ = ("_ivals", "_size", "_slices", "_hash")

    def __init__(self, *intervals: Interval | tuple[int, int] | Sequence[int]):
        ivals = []
        for iv in intervals:
            if isinstance(iv, Interval):
                ivals.append(iv)
            else:
                b, e = iv
                ivals.append(Interval(int(b), int(e)))
        if not ivals:
            raise ValueError("Rect needs at least one dimension")
        object.__setattr__(self, "_ivals", tuple(ivals))
        object.__setattr__(self, "_size", None)
        object.__setattr__(self, "_slices", None)
        object.__setattr__(self, "_hash", None)

    # -- constructors -----------------------------------------------------
    @staticmethod
    def _new(ivals: tuple[Interval, ...]) -> "Rect":
        """Internal fast constructor from a validated interval tuple.

        The hot algebra (``intersect``/``subtract``, thousands of calls per
        scheduled invocation) builds results through this path, skipping the
        per-argument coercion of ``__init__``.
        """
        r = Rect.__new__(Rect)
        r._ivals = ivals
        r._size = None
        r._slices = None
        r._hash = None
        return r

    @staticmethod
    def from_shape(shape: Sequence[int]) -> "Rect":
        """The full extent ``[0, s)`` in every dimension."""
        return Rect(*[(0, int(s)) for s in shape])

    @staticmethod
    def empty_like(ndim: int) -> "Rect":
        """A canonical empty rect of the given dimensionality."""
        return Rect(*[(0, 0)] * ndim)

    # -- basic properties --------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self._ivals)

    @property
    def intervals(self) -> tuple[Interval, ...]:
        return self._ivals

    @property
    def begin(self) -> tuple[int, ...]:
        return tuple(iv.begin for iv in self._ivals)

    @property
    def end(self) -> tuple[int, ...]:
        return tuple(iv.end for iv in self._ivals)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(iv.size for iv in self._ivals)

    @property
    def size(self) -> int:
        """Number of elements covered (product of extents; cached)."""
        n = self._size
        if n is None:
            n = 1
            for iv in self._ivals:
                n *= iv.end - iv.begin
            object.__setattr__(self, "_size", n)
        return n

    @property
    def empty(self) -> bool:
        # Intervals are non-negative in extent, so "some dimension empty"
        # is exactly "the (cached) element count is zero".
        return self.size == 0

    def __getitem__(self, dim: int) -> Interval:
        return self._ivals[dim]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return self._ivals == other._ivals

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(self._ivals)
            self._hash = h
        return h

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Rect(" + " x ".join(repr(iv) for iv in self._ivals) + ")"

    # -- algebra ------------------------------------------------------------
    def _check_ndim(self, other: "Rect") -> None:
        if self.ndim != other.ndim:
            raise ValueError(
                f"dimensionality mismatch: {self.ndim} vs {other.ndim}"
            )

    def intersect(self, other: "Rect") -> "Rect":
        """Rectangular intersection (Algorithm 2, line 10)."""
        a = self._ivals
        b = other._ivals
        if len(a) != len(b):
            self._check_ndim(other)
        out = []
        for x, y in zip(a, b):
            bb = x.begin if x.begin >= y.begin else y.begin
            ee = x.end if x.end <= y.end else y.end
            if ee < bb:
                ee = bb
            # Reuse an operand's interval when it equals the result —
            # the common cases (containment / identity) allocate nothing.
            if bb == x.begin and ee == x.end:
                out.append(x)
            elif bb == y.begin and ee == y.end:
                out.append(y)
            else:
                out.append(Interval(bb, ee))
        return Rect._new(tuple(out))

    def hull(self, other: "Rect") -> "Rect":
        """N-d bounding box of both rects (Memory Analyzer, §4.2)."""
        self._check_ndim(other)
        if self.empty:
            return other
        if other.empty:
            return self
        return Rect(*[a.hull(b) for a, b in zip(self._ivals, other._ivals)])

    def contains(self, other: "Rect") -> bool:
        a = self._ivals
        b = other._ivals
        if len(a) != len(b):
            self._check_ndim(other)
        if other.empty:
            return True
        if self.empty:
            return False
        for x, y in zip(a, b):
            if y.begin < x.begin or x.end < y.end:
                return False
        return True

    def contains_point(self, point: Sequence[int]) -> bool:
        return all(
            iv.begin <= p < iv.end for iv, p in zip(self._ivals, point)
        )

    def overlaps(self, other: "Rect") -> bool:
        a = self._ivals
        b = other._ivals
        if len(a) != len(b):
            self._check_ndim(other)
        for x, y in zip(a, b):
            # Empty overlap in this dimension (covers empty operands too).
            lo = x.begin if x.begin >= y.begin else y.begin
            hi = x.end if x.end <= y.end else y.end
            if hi <= lo:
                return False
        return True

    def shift(self, offsets: Sequence[int]) -> "Rect":
        if len(offsets) != self.ndim:
            raise ValueError("offset dimensionality mismatch")
        return Rect(*[iv.shift(o) for iv, o in zip(self._ivals, offsets)])

    def expand(self, margins: Sequence[int] | int) -> "Rect":
        """Grow symmetrically by per-dimension margins (stencil halo)."""
        if isinstance(margins, int):
            margins = [margins] * self.ndim
        if len(margins) != self.ndim:
            raise ValueError("margin dimensionality mismatch")
        return Rect(*[iv.expand(m) for iv, m in zip(self._ivals, margins)])

    def clip(self, bounds: "Rect") -> "Rect":
        """Clamp into ``bounds`` (used for CLAMP/ZERO boundary conditions)."""
        self._check_ndim(bounds)
        return Rect(
            *[
                iv.clamp(b.begin, b.end)
                for iv, b in zip(self._ivals, bounds._ivals)
            ]
        )

    def translate_into(self, origin: Sequence[int]) -> "Rect":
        """Express this rect relative to a new origin (buffer-local coords)."""
        return self.shift([-o for o in origin])

    def subtract(self, other: "Rect") -> list["Rect"]:
        """Set difference ``self \\ other`` as a list of disjoint rects.

        Used by the location monitor to track which parts of a required
        segment are still missing after accounting for up-to-date instances.
        The decomposition splits along each dimension in turn (guillotine
        cuts), producing at most ``2*ndim`` pieces.
        """
        a = self._ivals
        b = other._ivals
        if len(a) != len(b):
            self._check_ndim(other)
        # Inline intersection; bail out (the common cases) without
        # allocating any intermediate Rect.
        inter: list[Interval] = []
        identical = True
        for x, y in zip(a, b):
            bb = x.begin if x.begin >= y.begin else y.begin
            ee = x.end if x.end <= y.end else y.end
            if ee <= bb:
                return [] if self.empty else [self]
            if bb != x.begin or ee != x.end:
                identical = False
                inter.append(Interval(bb, ee))
            else:
                inter.append(x)
        if identical:
            return []
        pieces: list[Rect] = []
        remaining = list(a)
        for d in range(len(a)):
            iv = remaining[d]
            cut = inter[d]
            if iv.begin < cut.begin:
                lo = list(remaining)
                lo[d] = Interval(iv.begin, cut.begin)
                pieces.append(Rect._new(tuple(lo)))
            if cut.end < iv.end:
                hi = list(remaining)
                hi[d] = Interval(cut.end, iv.end)
                pieces.append(Rect._new(tuple(hi)))
            remaining[d] = cut
        return pieces

    def subtract_all(self, others: Iterable["Rect"]) -> list["Rect"]:
        """Set difference against several rects."""
        parts = [self] if not self.empty else []
        for other in others:
            nxt: list[Rect] = []
            for p in parts:
                nxt.extend(p.subtract(other))
            parts = nxt
            if not parts:
                break
        return parts

    # -- numpy interop ------------------------------------------------------
    def slices(self, origin: Sequence[int] | None = None) -> tuple[slice, ...]:
        """Numpy slicing tuple, optionally relative to a buffer origin.

        The origin-free form (the common case in functional payloads) is
        computed once per rect and cached.
        """
        if origin is None:
            s = self._slices
            if s is None:
                s = tuple(slice(iv.begin, iv.end) for iv in self._ivals)
                object.__setattr__(self, "_slices", s)
            return s
        return tuple(
            slice(iv.begin - o, iv.end - o)
            for iv, o in zip(self._ivals, origin)
        )

    # -- iteration ----------------------------------------------------------
    def points(self) -> Iterator[tuple[int, ...]]:
        """Iterate all integer points (tests on tiny rects only)."""
        return itertools.product(
            *[range(iv.begin, iv.end) for iv in self._ivals]
        )


def bounding_box(rects: Iterable[Rect]) -> Rect | None:
    """N-d bounding box of a collection of rects; ``None`` if all empty."""
    box: Rect | None = None
    for r in rects:
        if r.empty:
            continue
        box = r if box is None else box.hull(r)
    return box


def split_modular(rect: Rect, shape: Sequence[int]) -> list[tuple[Rect, Rect]]:
    """Split an out-of-bounds rect into in-bounds modular pieces.

    For WRAP boundary conditions, a required source region such as rows
    ``[-1, 0)`` of an ``H``-row matrix actually refers to rows
    ``[H-1, H)``. This function decomposes ``rect`` into pieces that lie
    fully within ``[0, shape)`` and returns ``(virtual_piece, actual_piece)``
    pairs: the *virtual* piece in the original (possibly out-of-bounds)
    coordinates, and the *actual* in-bounds piece it maps to.

    ``rect`` must not extend more than one full period beyond the bounds in
    any dimension (stencil radii are assumed smaller than the datum). Note
    that distinct virtual pieces may map to the same actual region (a halo
    aliasing the interior when a stripe nearly spans the datum); callers
    that cannot tolerate aliasing detect it via
    :func:`repro.core.buffers.locate_virtual`.
    """
    ndim = rect.ndim
    if len(shape) != ndim:
        raise ValueError("shape dimensionality mismatch")
    for d in range(ndim):
        iv = rect[d]
        if iv.begin < -shape[d] or iv.end > 2 * shape[d]:
            raise ValueError(f"rect exceeds one period beyond bounds in dim {d}")

    # Per-dimension: list of (virtual interval, wrap offset) pieces.
    per_dim: list[list[tuple[Interval, int]]] = []
    for d in range(ndim):
        iv = rect[d]
        n = shape[d]
        pieces: list[tuple[Interval, int]] = []
        # below-bounds part
        if iv.begin < 0:
            pieces.append((Interval(iv.begin, min(iv.end, 0)), n))
        # in-bounds part
        b, e = max(iv.begin, 0), min(iv.end, n)
        if e > b:
            pieces.append((Interval(b, e), 0))
        # above-bounds part
        if iv.end > n:
            pieces.append((Interval(max(iv.begin, n), iv.end), -n))
        per_dim.append(pieces)

    result: list[tuple[Rect, Rect]] = []
    for combo in itertools.product(*per_dim):
        virtual = Rect(*[c[0] for c in combo])
        actual = virtual.shift([c[1] for c in combo])
        if not virtual.empty:
            result.append((virtual, actual))
    return result


def coalesce(rects: list[Rect]) -> list[Rect]:
    """Merge adjacent rects that differ only along one dimension.

    A light-weight cleanup pass used when accumulating up-to-date segment
    instances, keeping the location-monitor lists short. This is a greedy
    single pass repeated to fixpoint; it does not guarantee a minimal
    cover, only a correct one.
    """
    rects = [r for r in rects if not r.empty]
    changed = True
    while changed:
        changed = False
        out: list[Rect] = []
        used = [False] * len(rects)
        for i, a in enumerate(rects):
            if used[i]:
                continue
            merged = a
            for j in range(i + 1, len(rects)):
                if used[j]:
                    continue
                m = _try_merge(merged, rects[j])
                if m is not None:
                    merged = m
                    used[j] = True
                    changed = True
            out.append(merged)
        rects = out
    return rects


def _try_merge(a: Rect, b: Rect) -> Rect | None:
    """Merge two rects if they tile a larger rect exactly, else None."""
    if a.ndim != b.ndim:
        return None
    if a.contains(b):
        return a
    if b.contains(a):
        return b
    diff_dim = -1
    for d in range(a.ndim):
        if a[d] != b[d]:
            if diff_dim >= 0:
                return None
            diff_dim = d
    if diff_dim < 0:
        return a
    ia, ib = a[diff_dim], b[diff_dim]
    if ia.end < ib.begin or ib.end < ia.begin:
        return None  # disjoint with a gap
    merged = list(a.intervals)
    merged[diff_dim] = Interval(min(ia.begin, ib.begin), max(ia.end, ib.end))
    return Rect(*merged)
