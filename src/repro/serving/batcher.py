"""Dynamic request batching (DESIGN.md §14).

Queued requests of the same kind are coalesced into one padded
fixed-shape submission. The policy is the standard two-knob dynamic
batcher: a batch closes when it reaches ``max_batch`` requests, or when
its oldest member has waited ``max_wait`` simulated seconds — so under
load batches fill (amortizing the per-submission host path over up to
``max_batch`` requests), while a lone late-night request pays at most
``max_wait`` extra latency.

Correctness contract: because replicas execute every batch at one fixed
padded shape (see :class:`repro.apps.lenet.inference.LeNetInference`), a
request's result is bitwise independent of its batch-mates — the batcher
changes *latency*, never *answers*.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.serving.trace import Request


@dataclass(frozen=True)
class Batch:
    """One closed batch, ready to dispatch to a replica."""

    kind: str
    requests: tuple[Request, ...]
    #: Simulated time the batch was closed (dispatch decision time).
    formed_at: float

    def __len__(self) -> int:
        return len(self.requests)


class DynamicBatcher:
    """Per-kind FIFO queues with full-or-expired batch closing.

    Args:
        max_batch: Most requests per batch (the replicas' fixed engine
            shape is at least this).
        max_wait: Longest a queued request may wait for batch-mates
            before its batch is closed partially filled.
        slo: Optional latency SLO in simulated seconds. When set, a
            queued request whose deadline (``arrival + slo``) has already
            passed is **shed** at batch-close time instead of being
            batched — serving it would burn replica capacity on a
            guaranteed SLO miss (the same dead-on-arrival class of bug as
            the job server's ``_expire_dead_jobs``). A request can never
            be dead at enqueue time (its deadline is ``slo`` past its
            arrival), so close-time shedding covers the enqueue side too.
            Default None preserves the shed-nothing behavior.
    """

    def __init__(
        self,
        max_batch: int = 8,
        max_wait: float = 5e-4,
        slo: float | None = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait < 0.0:
            raise ValueError("max_wait must be >= 0")
        if slo is not None and slo <= 0.0:
            raise ValueError("slo must be positive")
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.slo = None if slo is None else float(slo)
        self._queues: dict[str, deque[Request]] = {}
        #: Diagnostics: requests enqueued / batches closed / total batched
        #: requests (mean batch size = batched / batches).
        self.enqueued = 0
        self.batches = 0
        self.batched = 0
        #: Requests shed past their SLO deadline (count and records).
        self.shed = 0
        self.shed_requests: list[Request] = []

    def enqueue(self, req: Request) -> None:
        self._queues.setdefault(req.kind, deque()).append(req)
        self.enqueued += 1

    def depth(self) -> int:
        """Total queued requests across kinds."""
        return sum(len(q) for q in self._queues.values())

    def _closable(self, now: float) -> list[str]:
        out = []
        for kind, q in self._queues.items():
            if not q:
                continue
            if len(q) >= self.max_batch or now >= q[0].arrival + self.max_wait:
                out.append(kind)
        return out

    def _shed_expired(self, now: float) -> None:
        """Drop queued requests already past their SLO deadline. Queues
        are FIFO by arrival, so expired requests sit at the head."""
        if self.slo is None:
            return
        for q in self._queues.values():
            while q and now >= q[0].arrival + self.slo:
                self.shed_requests.append(q.popleft())
                self.shed += 1

    def pop(self, now: float) -> Batch | None:
        """Close and return the most urgent ready batch at ``now``, or
        None. Urgency is FIFO across kinds: the closable queue whose head
        arrived first wins (kind name breaks exact ties, so the order is
        a pure function of the queue state). With an SLO configured,
        dead-on-arrival requests are shed before the batch forms."""
        self._shed_expired(now)
        ready = self._closable(now)
        if not ready:
            return None
        kind = min(ready, key=lambda k: (self._queues[k][0].arrival, k))
        q = self._queues[kind]
        take = min(self.max_batch, len(q))
        requests = tuple(q.popleft() for _ in range(take))
        self.batches += 1
        self.batched += take
        return Batch(kind=kind, requests=requests, formed_at=now)

    def next_deadline(self) -> float | None:
        """Earliest future time a queued partial batch must close (its
        head's ``arrival + max_wait``), or None when nothing is queued."""
        heads = [q[0].arrival for q in self._queues.values() if q]
        return min(heads) + self.max_wait if heads else None

    @property
    def mean_batch(self) -> float:
        return self.batched / self.batches if self.batches else 0.0
