"""The serving driver: open-loop traffic against replicated engines
(DESIGN.md §14).

:class:`ServingNode` replays a seeded :class:`~repro.serving.trace.
ArrivalTrace` against one simulated multi-GPU node. Requests land in the
:class:`~repro.serving.batcher.DynamicBatcher`; closed batches dispatch
to per-device *replicas* (a device-restricted scheduler hosting both
model engines); a :class:`~repro.serving.autoscaler.ReplicaAutoscaler`
grows and shrinks the replica set as backlog moves.

Time model — virtual clock over real execution
----------------------------------------------
The simulated node is inherently serial: one engine, one global clock.
Replicas, however, are *concurrent* servers. The driver reconciles the
two the standard DES way: it keeps its own **virtual clock** and a
``busy_until`` per replica. When a batch dispatches at virtual time
``t``, the batch runs **for real** on the replica's scheduler (full
functional simulation — plans, transfers, faults, padded kernels), the
node-clock delta is taken as the batch's service time ``s``, and the
replica is busy until ``t + s`` in virtual time. Provisioning a replica
is measured the same way (scheduler build + weight distribution +
warm-up serve). Because each replica owns one device and drains its
streams per serve, the serialized real executions never overlap on a
device — exactly the concurrency one-replica-per-GPU would have.

Everything is a pure function of the trace and the config: run the same
trace twice and arrivals, batch compositions, scaling decisions,
latencies, and result bytes are identical. Composition knobs reuse
earlier subsystems: ``capacity_frac`` shrinks device memory (the §10
pressure path), ``faults`` installs a :class:`~repro.sim.faults.
FaultPlan` (the §11 straggler path).
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.core import Scheduler
from repro.hardware import GTX_780, GPUSpec
from repro.serving.autoscaler import ReplicaAutoscaler, ScalingEvent
from repro.serving.batcher import Batch, DynamicBatcher
from repro.serving.models import LeNetEngine, SgemmEngine
from repro.serving.trace import ArrivalTrace, Request
from repro.sim import SimNode
from repro.sim.faults import FaultPlan


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of one serving run.

    ``max_batch`` is the replicas' fixed padded engine shape;
    ``batch_limit`` (default: ``max_batch``) caps how many requests the
    batcher may coalesce — setting it to 1 serves every request alone at
    the *same* engine shape, which is the sequential baseline the
    bit-identity tests compare against.
    """

    spec: GPUSpec = GTX_780
    num_gpus: int = 4
    functional: bool = True
    max_batch: int = 8
    batch_limit: int | None = None
    max_wait: float = 5e-4
    min_replicas: int = 1
    max_replicas: int | None = None  # default: num_gpus
    up_backlog: float = 8.0
    down_backlog: float = 1.0
    cooldown: float = 2e-3
    #: Latency SLO in simulated seconds: a request completing within
    #: ``slo`` of its arrival counts toward goodput.
    slo: float = 1e-2
    #: Shed queued requests already past their SLO deadline instead of
    #: batching them (see :class:`~repro.serving.batcher.DynamicBatcher`).
    #: Opt-in: the default preserves serve-everything behavior.
    shed_expired: bool = False
    sgemm_size: int = 96
    sgemm_layers: int = 6
    model_seed: int = 0
    #: Memory-pressure composition: device memory is scaled by this.
    capacity_frac: float = 1.0
    #: Straggler composition: installed on the node when not None.
    faults: FaultPlan | None = None
    #: Clear the node trace / task-handle logs every this many batches
    #: (bounded memory over multi-thousand-request traces).
    clear_every: int = 64


@dataclass(frozen=True)
class ServedRequest:
    """Latency record of one completed request."""

    rid: int
    kind: str
    arrival: float
    dispatched: float  # batch close time (virtual)
    completed: float  # virtual completion time
    device: int
    batch_size: int

    @property
    def latency(self) -> float:
        return self.completed - self.arrival


@dataclass
class ServingReport:
    """Everything one serving run produced."""

    config: ServingConfig
    pattern: str
    offered_rate: float
    n_requests: int
    served: list[ServedRequest]
    results: dict[int, np.ndarray]
    makespan: float
    scaling_events: list[ScalingEvent]
    peak_replicas: int
    provisionings: int
    batches: int
    mean_batch: float
    graph_captures: int
    graph_replayed_pairs: int
    #: Requests shed past their SLO deadline instead of served (empty
    #: unless ``config.shed_expired``).
    shed: list[Request] = field(default_factory=list)

    @property
    def latencies(self) -> np.ndarray:
        return np.asarray([s.latency for s in self.served])

    @property
    def slo_attainment(self) -> float:
        """Fraction of *offered* requests completing within the SLO —
        shed requests count as misses."""
        lat = self.latencies
        total = len(lat) + len(self.shed)
        if total == 0:
            return 0.0
        return float((lat <= self.config.slo).sum() / total)

    @property
    def goodput(self) -> float:
        """Within-SLO completions per simulated second."""
        if self.makespan <= 0.0:
            return 0.0
        ok = int((self.latencies <= self.config.slo).sum())
        return ok / self.makespan

    @property
    def throughput(self) -> float:
        """Completions per simulated second (shed requests never
        complete)."""
        if self.makespan <= 0.0:
            return 0.0
        return (self.n_requests - len(self.shed)) / self.makespan

    def results_hash(self) -> str:
        """Order-independent digest of every request's result bytes —
        the determinism/bit-identity comparison key."""
        h = hashlib.sha256()
        for rid in sorted(self.results):
            h.update(rid.to_bytes(8, "little", signed=True))
            h.update(self.results[rid].tobytes())
        return h.hexdigest()


class _Replica:
    """One device's copy of both model engines."""

    def __init__(self, node: SimNode, device: int, cfg: ServingConfig):
        self.device = device
        self.sched = Scheduler(node, devices=(device,))
        self.engines = {
            "lenet": LeNetEngine(
                self.sched, cfg.max_batch, model_seed=cfg.model_seed
            ),
            "sgemm": SgemmEngine(
                self.sched,
                cfg.max_batch,
                size=cfg.sgemm_size,
                layers=cfg.sgemm_layers,
                model_seed=cfg.model_seed,
            ),
        }
        #: Virtual times (driver-owned).
        self.ready_at = 0.0
        self.busy_until = 0.0

    def warmup(self) -> None:
        for eng in self.engines.values():
            eng.warmup()

    def serve(self, batch: Batch) -> list[np.ndarray]:
        return self.engines[batch.kind].serve(list(batch.requests))

    def graph_stats(self) -> tuple[int, int]:
        s = self.engines["sgemm"]
        return s.captures, s.replayed_pairs


@dataclass
class _State:
    """Mutable loop state (split out for readability)."""

    replicas: dict[int, _Replica] = field(default_factory=dict)
    retired_graph_stats: tuple[int, int] = (0, 0)
    provisionings: int = 0
    peak: int = 0


class ServingNode:
    """Open-loop serving harness over one simulated node."""

    def __init__(self, cfg: ServingConfig = ServingConfig()):
        self.cfg = cfg
        spec = cfg.spec
        if cfg.capacity_frac != 1.0:
            if not 0.0 < cfg.capacity_frac <= 1.0:
                raise ValueError("capacity_frac must be in (0, 1]")
            spec = dataclasses.replace(
                spec,
                global_memory_bytes=int(
                    spec.global_memory_bytes * cfg.capacity_frac
                ),
            )
        self.node = SimNode(
            spec,
            cfg.num_gpus,
            functional=cfg.functional,
            faults=cfg.faults,
        )
        limit = cfg.batch_limit if cfg.batch_limit is not None else (
            cfg.max_batch
        )
        if not 1 <= limit <= cfg.max_batch:
            raise ValueError(
                f"batch_limit must be in [1, max_batch]; got {limit}"
            )
        self._limit = limit
        maxr = cfg.max_replicas if cfg.max_replicas is not None else (
            cfg.num_gpus
        )
        if maxr > cfg.num_gpus:
            raise ValueError(
                f"max_replicas {maxr} exceeds the node's {cfg.num_gpus} "
                "devices (one replica per device)"
            )
        self.autoscaler = ReplicaAutoscaler(
            min_replicas=cfg.min_replicas,
            max_replicas=maxr,
            up_backlog=cfg.up_backlog,
            down_backlog=cfg.down_backlog,
            cooldown=cfg.cooldown,
        )

    # -- replica lifecycle ----------------------------------------------------
    def _provision(self, st: _State, now: float) -> None:
        device = min(
            d for d in range(self.cfg.num_gpus) if d not in st.replicas
        )
        t0 = self.node.time
        rep = _Replica(self.node, device, self.cfg)
        rep.warmup()
        rep.ready_at = now + (self.node.time - t0)
        rep.busy_until = rep.ready_at
        st.replicas[device] = rep
        st.provisionings += 1
        st.peak = max(st.peak, len(st.replicas))

    def _retire(self, st: _State, idle: list[_Replica]) -> None:
        rep = max(idle, key=lambda r: r.device)
        c, p = rep.graph_stats()
        c0, p0 = st.retired_graph_stats
        st.retired_graph_stats = (c0 + c, p0 + p)
        del st.replicas[rep.device]
        rep.sched.release()

    # -- the event loop -------------------------------------------------------
    def run(self, trace: ArrivalTrace) -> ServingReport:
        """Replay ``trace`` to completion; returns the full report."""
        cfg = self.cfg
        batcher = DynamicBatcher(
            max_batch=self._limit,
            max_wait=cfg.max_wait,
            slo=cfg.slo if cfg.shed_expired else None,
        )
        st = _State()
        served: list[ServedRequest] = []
        results: dict[int, np.ndarray] = {}
        arrivals: tuple[Request, ...] = trace.requests
        n, ai = len(arrivals), 0
        now = 0.0
        for _ in range(cfg.min_replicas):
            self._provision(st, now)
        while len(served) + batcher.shed < n:
            while ai < n and arrivals[ai].arrival <= now:
                batcher.enqueue(arrivals[ai])
                ai += 1
            idle = [
                r
                for r in st.replicas.values()
                if r.ready_at <= now and r.busy_until <= now
            ]
            delta = self.autoscaler.decide(
                now, batcher.depth(), len(st.replicas), len(idle)
            )
            if delta > 0:
                self._provision(st, now)
            elif delta < 0:
                self._retire(st, idle)
                idle = [r for r in idle if r.device in st.replicas]
            while idle:
                batch = batcher.pop(now)
                if batch is None:
                    break
                rep = min(idle, key=lambda r: r.device)
                idle.remove(rep)
                t0 = self.node.time
                outs = rep.serve(batch)
                service = self.node.time - t0
                rep.busy_until = now + service
                for req, out in zip(batch.requests, outs):
                    results[req.rid] = out
                    served.append(
                        ServedRequest(
                            rid=req.rid,
                            kind=req.kind,
                            arrival=req.arrival,
                            dispatched=now,
                            completed=rep.busy_until,
                            device=rep.device,
                            batch_size=len(batch),
                        )
                    )
                if batcher.batches % cfg.clear_every == 0:
                    # Bounded memory over long traces: the event trace and
                    # the append-only task-handle logs are diagnostics, not
                    # state — drop them periodically.
                    self.node.trace.clear()
                    for r in st.replicas.values():
                        r.sched.handles.clear()
            nxt: list[float] = []
            if ai < n:
                nxt.append(arrivals[ai].arrival)
            for r in st.replicas.values():
                if r.ready_at > now:
                    nxt.append(r.ready_at)
                if r.busy_until > now:
                    nxt.append(r.busy_until)
            dl = batcher.next_deadline()
            if dl is not None and dl > now:
                nxt.append(dl)
            if not nxt:
                if len(served) + batcher.shed < n:
                    raise RuntimeError(
                        "serving loop stalled with "
                        f"{n - len(served) - batcher.shed} requests "
                        "unserved"
                    )
                break
            now = min(nxt)
        served.sort(key=lambda s: (s.completed, s.rid))
        makespan = served[-1].completed if served else 0.0
        caps, pairs = st.retired_graph_stats
        for r in st.replicas.values():
            c, p = r.graph_stats()
            caps += c
            pairs += p
        return ServingReport(
            config=cfg,
            pattern=trace.pattern,
            offered_rate=trace.rate,
            n_requests=n,
            served=served,
            results=results,
            makespan=makespan,
            scaling_events=list(self.autoscaler.events),
            peak_replicas=st.peak,
            provisionings=st.provisionings,
            batches=batcher.batches,
            mean_batch=batcher.mean_batch,
            graph_captures=caps,
            graph_replayed_pairs=pairs,
            shed=list(batcher.shed_requests),
        )


def serve_trace(
    trace: ArrivalTrace, cfg: ServingConfig = ServingConfig()
) -> ServingReport:
    """Convenience one-shot: build a :class:`ServingNode` and run."""
    return ServingNode(cfg).run(trace)
