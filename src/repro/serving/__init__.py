"""Serving under load (DESIGN.md §14): open-loop traffic, dynamic
batching, replica autoscaling, latency SLOs."""

from repro.serving.autoscaler import ReplicaAutoscaler, ScalingEvent
from repro.serving.batcher import Batch, DynamicBatcher
from repro.serving.models import LeNetEngine, SgemmEngine
from repro.serving.service import (
    ServedRequest,
    ServingConfig,
    ServingNode,
    ServingReport,
    serve_trace,
)
from repro.serving.trace import (
    DEFAULT_MIX,
    ArrivalTrace,
    Request,
    bursty_trace,
    poisson_trace,
)

__all__ = [
    "ArrivalTrace",
    "Batch",
    "DEFAULT_MIX",
    "DynamicBatcher",
    "LeNetEngine",
    "ReplicaAutoscaler",
    "Request",
    "ScalingEvent",
    "ServedRequest",
    "ServingConfig",
    "ServingNode",
    "ServingReport",
    "SgemmEngine",
    "bursty_trace",
    "poisson_trace",
    "serve_trace",
]
