"""Seeded open-loop arrival traces (DESIGN.md §14).

An *open-loop* load generator stamps every request with an arrival time
drawn ahead of time from a stochastic process — arrivals do **not** wait
for earlier responses, so queueing delay compounds exactly as it would
under real independent users (the load-testing failure mode closed-loop
harnesses hide). Two processes are provided:

* :func:`poisson_trace` — homogeneous Poisson arrivals (exponential
  gaps), the classic many-independent-users model;
* :func:`bursty_trace` — a Markov-modulated Poisson process alternating
  ON (rate × ``burst``) and OFF (rate scaled down to preserve the mean)
  phases: same offered load, much heavier tail pressure.

Both are pure functions of their seed: the same call produces the same
trace, arrival by arrival, which is what makes the serving benchmark's
run-twice determinism assert possible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Default request mix: half LeNet inference, half SGEMM microservice.
DEFAULT_MIX = (("lenet", 0.5), ("sgemm", 0.5))


@dataclass(frozen=True)
class Request:
    """One inference request of an arrival trace.

    Attributes:
        rid: Unique request id within the trace (also the determinism
            key: results are compared per-rid across runs).
        kind: Model to invoke (``"lenet"`` or ``"sgemm"``).
        arrival: Arrival time in simulated seconds from trace start.
        seed: Seed from which the request's input payload is generated
            (deterministically) at serve time.
    """

    rid: int
    kind: str
    arrival: float
    seed: int


@dataclass(frozen=True)
class ArrivalTrace:
    """An immutable, seeded arrival trace."""

    pattern: str
    rate: float
    seed: int
    requests: tuple[Request, ...]

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def duration(self) -> float:
        """Span from t=0 to the last arrival."""
        return self.requests[-1].arrival if self.requests else 0.0

    def kind_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for r in self.requests:
            counts[r.kind] = counts.get(r.kind, 0) + 1
        return counts


def _check(n: int, rate: float, mix) -> None:
    if n < 1:
        raise ValueError("need at least one request")
    if rate <= 0.0:
        raise ValueError("arrival rate must be positive")
    total = sum(w for _, w in mix)
    if not mix or total <= 0.0 or any(w < 0.0 for _, w in mix):
        raise ValueError(f"bad request mix {mix!r}")


def _assemble(
    pattern: str,
    rate: float,
    seed: int,
    arrivals: np.ndarray,
    rng: np.random.Generator,
    mix,
) -> ArrivalTrace:
    kinds = [k for k, _ in mix]
    weights = np.asarray([w for _, w in mix], dtype=float)
    weights /= weights.sum()
    picks = rng.choice(len(kinds), size=len(arrivals), p=weights)
    seeds = rng.integers(0, 2**31 - 1, size=len(arrivals))
    requests = tuple(
        Request(
            rid=i,
            kind=kinds[int(picks[i])],
            arrival=float(arrivals[i]),
            seed=int(seeds[i]),
        )
        for i in range(len(arrivals))
    )
    return ArrivalTrace(
        pattern=pattern, rate=rate, seed=seed, requests=requests
    )


def poisson_trace(
    n: int,
    rate: float,
    seed: int = 0,
    mix=DEFAULT_MIX,
) -> ArrivalTrace:
    """``n`` Poisson arrivals at ``rate`` requests/simulated-second."""
    _check(n, rate, mix)
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / rate, size=n))
    return _assemble("poisson", rate, seed, arrivals, rng, mix)


def bursty_trace(
    n: int,
    rate: float,
    seed: int = 0,
    mix=DEFAULT_MIX,
    burst: float = 4.0,
    duty: float = 0.2,
    cycle: float | None = None,
) -> ArrivalTrace:
    """``n`` arrivals from an ON/OFF modulated Poisson process.

    ON phases (fraction ``duty`` of each cycle) arrive at ``rate *
    burst``; OFF phases at the rate that preserves the overall mean, so a
    bursty trace offers the *same* load as :func:`poisson_trace` at equal
    ``rate`` — only the variance (and therefore the tail latency it
    induces) differs.

    Args:
        burst: ON-phase rate multiplier (must satisfy ``burst <= 1/duty``
            so the OFF rate stays non-negative).
        duty: Fraction of each cycle spent ON.
        cycle: Cycle length in simulated seconds (default: the span of
            ``20 / rate`` — about 20 requests per cycle).
    """
    _check(n, rate, mix)
    if not 0.0 < duty < 1.0:
        raise ValueError("duty must be in (0, 1)")
    if burst < 1.0 or burst > 1.0 / duty:
        raise ValueError(f"burst must be in [1, 1/duty]; got {burst}")
    cycle = cycle if cycle is not None else 20.0 / rate
    on_len = duty * cycle
    rate_on = rate * burst
    rate_off = rate * (1.0 - duty * burst) / (1.0 - duty)
    rng = np.random.default_rng(seed)
    # Piecewise-constant rate: invert the cumulative hazard for each unit
    # exponential (thinning-free, so every drawn variate is consumed —
    # determinism does not depend on acceptance luck). Time is tracked as
    # (whole cycles, position within the cycle) — never as an absolute
    # clock fed through ``%`` — so the phase walk cannot stall on float
    # cancellation however many cycles the trace spans.
    exp = rng.exponential(1.0, size=n)
    arrivals = np.empty(n)
    k = 0  # completed cycles
    pos = 0.0  # position within the current cycle
    for i, e in enumerate(exp):
        while True:
            in_on = pos < on_len
            r = rate_on if in_on else rate_off
            boundary = on_len if in_on else cycle
            room = (boundary - pos) * r
            if e <= room:
                pos += e / r
                break
            e -= room
            pos = boundary
            if pos >= cycle:
                k += 1
                pos = 0.0
        arrivals[i] = k * cycle + pos
    return _assemble("bursty", rate, seed, arrivals, rng, mix)
