"""Replica model engines (DESIGN.md §14).

A *replica* is one device's copy of a model, hosted behind the dynamic
batcher. Two engines are served:

* :class:`LeNetEngine` — the Fig. 10 CNN, forward pass only, via
  :class:`repro.apps.lenet.inference.LeNetInference` (eager, plan-cached
  from the second batch on);
* :class:`SgemmEngine` — a chained small-SGEMM microservice (an
  ``layers``-deep stack of ``X @ B`` ping-pongs through *unmodified*
  CUBLAS, §4.6). Its steady-state ping-pong period is captured as an
  iteration graph (DESIGN.md §12) on the first serve and replayed on
  every later one, so the per-request host path is a graph launch, not
  ``layers`` scheduler invocations.

Both engines run every batch at one **fixed padded shape**. That is the
load-bearing invariant of the serving layer: identical call shapes mean
identical task plans and identical per-row arithmetic, so a request's
result is bitwise independent of its batch-mates and of the replica that
served it (replicas of one model share the same seeded weights). The
batcher and autoscaler may therefore change *latency* freely without
ever changing *answers*.
"""

from __future__ import annotations

import numpy as np

from repro.apps.lenet.inference import LeNetInference
from repro.apps.lenet.network import LeNetParams
from repro.core import Datum, Scheduler
from repro.libs.cublas import make_sgemm_routine, sgemm_containers
from repro.serving.trace import Request


class LeNetEngine:
    """LeNet-inference replica engine at a fixed batch shape.

    Args:
        sched: The replica's (device-restricted) scheduler.
        batch: Fixed engine batch shape (the batcher's ``max_batch``).
        model_seed: Weight seed — all replicas of the service use the
            same seed, so any replica answers any request identically.
    """

    kind = "lenet"

    def __init__(self, sched: Scheduler, batch: int, model_seed: int = 0):
        self.sched = sched
        self.batch = int(batch)
        self.params = LeNetParams.initialize(model_seed)
        self._engine = LeNetInference(sched, self.params, self.batch)
        self._model_seed = model_seed

    def _input_for(self, seed: int) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return rng.standard_normal((1, 28, 28)).astype(np.float32)

    def serve(self, requests: list[Request]) -> list[np.ndarray]:
        """Answer up to ``batch`` requests in one padded invocation;
        returns one ``(10,)`` logits vector per request."""
        images = np.stack([self._input_for(r.seed) for r in requests])
        logits = self._engine.infer(images)
        return [logits[i].copy() for i in range(len(requests))]

    def warmup(self) -> None:
        """One padded dummy batch: pays weight distribution + plan
        analysis so the first real request doesn't."""
        dummy = Request(
            rid=-1, kind=self.kind, arrival=0.0, seed=self._model_seed
        )
        self.serve([dummy])


class SgemmEngine:
    """Chained-SGEMM microservice replica engine at a fixed batch shape.

    Each request is a ``(size,)`` feature row; a batch ``X`` of them is
    pushed through ``layers`` ping-pong GEMMs (``Y = X @ B``,
    ``X = Y @ B``, ...) against a fixed seeded ``(size, size)`` weight
    matrix ``B`` scaled by ``1/sqrt(size)`` so magnitudes stay bounded.
    ``layers`` must be even: the result lands back in ``X``.

    The first ping-pong pair of every serve runs eagerly (it absorbs the
    new batch's host-to-device upload, which is not steady state); the
    second pair of the *first* serve is captured as an iteration graph
    and all remaining pairs — of this serve and every later one — replay
    it (``captures`` / ``replayed_pairs`` count the split). Zero-padding
    rows is arithmetically inert here (``0 @ B == 0``) and keeps the GEMM
    shape — and therefore the BLAS blocking and per-row summation order —
    identical across batch occupancies.
    """

    kind = "sgemm"

    def __init__(
        self,
        sched: Scheduler,
        batch: int,
        size: int = 96,
        layers: int = 6,
        model_seed: int = 0,
    ):
        if layers < 2 or layers % 2:
            raise ValueError(
                "layers must be even and >= 2 (the captured period is "
                "one X/Y ping-pong pair)"
            )
        self.sched = sched
        self.batch = int(batch)
        self.size = int(size)
        self.layers = int(layers)
        self._model_seed = model_seed
        rng = np.random.default_rng(model_seed)
        b_host = (
            rng.standard_normal((size, size)).astype(np.float32)
            / np.float32(np.sqrt(size))
        )
        self._x_host = np.zeros((self.batch, size), np.float32)
        self._x = Datum((self.batch, size), np.float32, "serve.X").bind(
            self._x_host
        )
        self._y = Datum((self.batch, size), np.float32, "serve.Y").bind(
            np.zeros((self.batch, size), np.float32)
        )
        self._b = Datum((size, size), np.float32, "serve.B").bind(b_host)
        self._routine = make_sgemm_routine()
        sched.analyze_call(
            self._routine, *sgemm_containers(self._x, self._b, self._y)
        )
        sched.analyze_call(
            self._routine, *sgemm_containers(self._y, self._b, self._x)
        )
        self.graph = None
        #: Diagnostics: graph captures performed / ping-pong pairs
        #: replayed through the graph (vs. run eagerly).
        self.captures = 0
        self.replayed_pairs = 0

    def _input_for(self, seed: int) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return rng.standard_normal(self.size).astype(np.float32)

    def _pair(self) -> None:
        self.sched.invoke_unmodified(
            self._routine, *sgemm_containers(self._x, self._b, self._y)
        )
        self.sched.invoke_unmodified(
            self._routine, *sgemm_containers(self._y, self._b, self._x)
        )

    def serve(self, requests: list[Request]) -> list[np.ndarray]:
        """Answer up to ``batch`` requests in one padded chained-GEMM
        run; returns one ``(size,)`` feature vector per request."""
        k = len(requests)
        if k > self.batch:
            raise ValueError(
                f"batch of {k} exceeds the engine's fixed shape "
                f"{self.batch}"
            )
        for i, r in enumerate(requests):
            self._x_host[i] = self._input_for(r.seed)
        if k < self.batch:
            self._x_host[k:] = 0.0
        sched = self.sched
        sched.mark_host_dirty(self._x)
        # First pair eager: pays the padded batch's H2D re-distribution,
        # leaving the monitor in the steady state the graph was captured
        # against.
        self._pair()
        sched.wait_all()
        pairs = self.layers // 2 - 1
        while pairs:
            if self.graph is not None:
                self.graph.launch(pairs)
                self.replayed_pairs += pairs
                pairs = 0
            else:
                with sched.capture() as g:
                    self._pair()
                self.graph = g
                self.captures += 1
                pairs -= 1
        sched.gather(self._x)
        out = self._x.host
        return [out[i].copy() for i in range(k)]

    def warmup(self) -> None:
        """One padded dummy batch: pays weight/input distribution, plan
        analysis, and the steady-state graph capture."""
        dummy = Request(
            rid=-1, kind=self.kind, arrival=0.0, seed=self._model_seed
        )
        self.serve([dummy])
