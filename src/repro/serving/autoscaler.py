"""Replica autoscaling with hysteresis (DESIGN.md §14).

Watches queue backlog per replica and decides when to add or remove a
per-device model replica. The two thresholds are deliberately far apart
(hysteresis): scaling up is triggered by sustained backlog, scaling down
only by near-idleness after a cooldown, so a load level that sits between
them holds the replica count steady instead of flapping — every scale-up
costs a provisioning warm-up (weight distribution to the new device) that
a flapping policy would pay over and over.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ScalingEvent:
    """One autoscaler decision, for the audit log."""

    time: float
    action: str  # "up" | "down"
    replicas: int  # replica count after the action
    depth: int  # queue depth that triggered it


class ReplicaAutoscaler:
    """Queue-depth-driven replica count controller.

    Args:
        min_replicas: Floor (the service never cold-starts from zero).
        max_replicas: Ceiling (the node's device count, typically).
        up_backlog: Scale up when queued requests per replica exceed
            this.
        down_backlog: Scale down when queued requests per replica fall
            below this. Must be strictly below ``up_backlog`` — the gap
            is the hysteresis band.
        cooldown: Minimum simulated seconds between scaling actions.
    """

    def __init__(
        self,
        min_replicas: int = 1,
        max_replicas: int = 4,
        up_backlog: float = 8.0,
        down_backlog: float = 1.0,
        cooldown: float = 2e-3,
    ):
        if min_replicas < 1 or max_replicas < min_replicas:
            raise ValueError(
                f"need 1 <= min_replicas <= max_replicas; got "
                f"{min_replicas}..{max_replicas}"
            )
        if down_backlog >= up_backlog:
            raise ValueError(
                "down_backlog must be strictly below up_backlog "
                "(the gap is the hysteresis band)"
            )
        if cooldown < 0.0:
            raise ValueError("cooldown must be >= 0")
        self.min_replicas = int(min_replicas)
        self.max_replicas = int(max_replicas)
        self.up_backlog = float(up_backlog)
        self.down_backlog = float(down_backlog)
        self.cooldown = float(cooldown)
        self.events: list[ScalingEvent] = []
        self._last_action: float | None = None

    def decide(
        self, now: float, depth: int, replicas: int, idle: int
    ) -> int:
        """One control decision: +1 (add a replica), -1 (remove an idle
        one), or 0. Mutates nothing but the event log; the serving driver
        owns the actual provisioning."""
        if (
            self._last_action is not None
            and now - self._last_action < self.cooldown
        ):
            return 0
        backlog = depth / max(replicas, 1)
        if backlog > self.up_backlog and replicas < self.max_replicas:
            self._last_action = now
            self.events.append(ScalingEvent(now, "up", replicas + 1, depth))
            return 1
        if (
            backlog < self.down_backlog
            and replicas > self.min_replicas
            and idle > 0
        ):
            self._last_action = now
            self.events.append(ScalingEvent(now, "down", replicas - 1, depth))
            return -1
        return 0
