"""``python -m repro.sanitize`` — run every built-in kernel and app under
the pattern-conformance sanitizer.

Exit status 0 means: all conformance scenarios ran clean (and their
numerical cross-checks passed), and every seeded-violation demo was caught
with the exact typed error it documents. Anything else exits 1 with a
per-scenario report.
"""

from __future__ import annotations

import argparse
import sys
import traceback

from repro.sanitize.builtin import CONFORMANCE, DEMOS, ScenarioFailure
from repro.sanitize.errors import SanitizerError


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitize",
        description=(
            "Run the built-in kernels and apps under the declared-pattern "
            "conformance sanitizer, and verify the seeded violation demos "
            "are caught."
        ),
    )
    parser.add_argument(
        "--scenario",
        help="run only scenarios whose name contains this substring",
    )
    parser.add_argument(
        "--segments", type=int, default=3,
        help="simulated devices per harness run (default 3)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, _ in CONFORMANCE:
            print(f"conformance  {name}")
        for name, exc, _ in DEMOS:
            print(f"violation    {name}  (expects {exc.__name__})")
        return 0

    def selected(name: str) -> bool:
        return not args.scenario or args.scenario in name

    failures: list[str] = []
    for name, fn in CONFORMANCE:
        if not selected(name):
            continue
        try:
            fn(args.segments)
        except (SanitizerError, ScenarioFailure) as e:
            failures.append(name)
            print(f"FAIL {name}")
            print("  " + str(e).replace("\n", "\n  "))
        except Exception:
            failures.append(name)
            print(f"ERROR {name}")
            traceback.print_exc()
        else:
            print(f"ok   {name}")

    for name, exc_type, fn in DEMOS:
        if not selected(name):
            continue
        try:
            fn(args.segments)
        except exc_type as e:
            first = str(e).splitlines()[0]
            print(f"ok   {name} (caught: {first})")
        except SanitizerError as e:
            failures.append(name)
            print(
                f"FAIL {name}: expected {exc_type.__name__}, got "
                f"{type(e).__name__}"
            )
            print("  " + str(e).replace("\n", "\n  "))
        except Exception:
            failures.append(name)
            print(f"ERROR {name}")
            traceback.print_exc()
        else:
            failures.append(name)
            print(
                f"FAIL {name}: expected {exc_type.__name__}, nothing raised"
            )

    total = len([n for n, _ in CONFORMANCE if selected(n)]) + len(
        [n for n, _, _ in DEMOS if selected(n)]
    )
    if failures:
        print(f"\n{len(failures)}/{total} scenario(s) failed")
        return 1
    print(f"\nall {total} scenario(s) passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
