"""Conformance checking: recorded accesses vs. declared patterns.

Two entry points, mirroring the two scopes a violation can have:

* :func:`check_segment` — judge one segment's recording in isolation
  (out-of-pattern reads, out-of-region writes, flags raised by the views).
* :func:`check_races` — judge all segments of one task together
  (write-write races between segments of an injective output, dynamic
  outputs whose combined appends overflow the declared capacity).

Both return lists of typed :class:`~repro.sanitize.errors.SanitizerError`
instances (not raised — callers decide whether to raise the first one or
collect a report).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.patterns.base import Aggregation, InputContainer, OutputContainer
from repro.patterns.boundary import Boundary
from repro.patterns.input_patterns import WindowND
from repro.patterns.output_patterns import UnstructuredInjective
from repro.sanitize.errors import (
    OutOfPatternReadError,
    OutOfRegionWriteError,
    SanitizerError,
    WriteRaceError,
)
from repro.sanitize.recorder import AccessRecorder
from repro.utils.rect import Rect, split_modular


def _read_escapes(container: InputContainer, declared, observed: Rect):
    """Parts of an observed read outside the declared footprint.

    Returns a list of out-of-footprint rects (in actual datum
    coordinates), empty when the read conforms. WRAP windows need modular
    reasoning: an observed virtual rect like rows ``[-1, 0)`` refers to the
    last datum row, which the declared pieces may well cover even though
    the virtual bounding boxes don't nest.
    """
    if declared.virtual.contains(observed):
        return []
    shape = container.datum.shape
    declared_actuals = [a for _, a in declared.pieces]
    boundary = getattr(container, "boundary", None)
    if isinstance(container, WindowND) and boundary is Boundary.WRAP:
        try:
            observed_pieces = [a for _, a in split_modular(observed, shape)]
        except ValueError:
            # More than one period out of bounds — cannot possibly be a
            # legal wrap access; the whole rect is an escape.
            return [observed]
    else:
        # CLAMP/ZERO resolve out-of-bounds virtual positions to edge/zero
        # values; the elements actually consumed are the clipped ones.
        observed_pieces = [observed.clip(Rect.from_shape(shape))]
    escapes = []
    for piece in observed_pieces:
        escapes.extend(piece.subtract_all(declared_actuals))
    return escapes


def _flag_errors(
    task_name: str,
    containers: Sequence,
    rec: AccessRecorder,
) -> list[SanitizerError]:
    """Typed errors for violations the views classified at access time."""
    errors: list[SanitizerError] = []
    for f in rec.flags:
        c = containers[f.container_index]
        common = dict(
            task=task_name,
            container_index=f.container_index,
            datum=c.datum.name,
            segment=rec.segment,
            device=rec.device,
            rect=f.rect,
            declared=f.declared,
        )
        if f.kind == "over-radius-read":
            errors.append(OutOfPatternReadError(f.detail, **common))
        else:  # "oob-write-index" / "append-overflow"
            errors.append(OutOfRegionWriteError(f.detail, **common))
    return errors


def check_segment(
    task_name: str,
    containers: Sequence,
    work_shape: Sequence[int],
    rec: AccessRecorder,
) -> list[SanitizerError]:
    """Check one segment's recorded accesses against the declarations."""
    errors = _flag_errors(task_name, containers, rec)
    flagged_reads = {
        f.container_index for f in rec.flags if f.kind == "over-radius-read"
    }
    for i, c in enumerate(containers):
        if isinstance(c, InputContainer):
            for observed in rec.reads.get(i, ()):
                if i in flagged_reads:
                    # The view already classified this container's
                    # over-radius accesses; re-deriving them from the
                    # footprint would double-report.
                    continue
                escapes = _read_escapes(
                    c, c.required(work_shape, rec.work_rect), observed
                )
                if escapes:
                    errors.append(OutOfPatternReadError(
                        f"segment read {escapes[0]} outside its declared "
                        f"{c.pattern_name} footprint",
                        task=task_name,
                        container_index=i,
                        datum=c.datum.name,
                        segment=rec.segment,
                        device=rec.device,
                        rect=observed,
                        declared=c.required(
                            work_shape, rec.work_rect
                        ).virtual,
                    ))
        elif isinstance(c, OutputContainer) and not c.duplicated:
            owned = c.owned(work_shape, rec.work_rect)
            for observed in rec.writes.get(i, ()):
                if not owned.contains(observed):
                    errors.append(OutOfRegionWriteError(
                        f"segment wrote outside its owned "
                        f"{c.pattern_name} region",
                        task=task_name,
                        container_index=i,
                        datum=c.datum.name,
                        segment=rec.segment,
                        device=rec.device,
                        rect=observed,
                        declared=owned,
                    ))
    return errors


def check_races(
    task_name: str,
    containers: Sequence,
    work_shape: Sequence[int],
    recorders: Sequence[AccessRecorder],
) -> list[SanitizerError]:
    """Cross-segment checks over all recorders of one task invocation."""
    errors: list[SanitizerError] = []
    for i, c in enumerate(containers):
        if not isinstance(c, OutputContainer):
            continue
        if isinstance(c, UnstructuredInjective):
            # Injectivity contract: no two segments scatter to the same
            # flat index (the zero-init SUM merge would double-count).
            seen: dict[int, int] = {}
            for rec in recorders:
                for idx in np.unique(rec.scattered(i)):
                    idx = int(idx)
                    if idx in seen and seen[idx] != rec.segment:
                        errors.append(WriteRaceError(
                            f"segments {seen[idx]} and {rec.segment} both "
                            f"scattered to flat index {idx}",
                            task=task_name,
                            container_index=i,
                            datum=c.datum.name,
                            rect=Rect((idx, idx + 1)),
                            declared="injective (disjoint) scatter",
                        ))
                        break
                    seen[idx] = rec.segment
        elif c.aggregation is Aggregation.APPEND:
            total = sum(rec.appends.get(i, 0) for rec in recorders)
            capacity = c.datum.shape[0]
            if total > capacity:
                errors.append(OutOfRegionWriteError(
                    f"combined appends ({total}) overflow the declared "
                    f"output capacity",
                    task=task_name,
                    container_index=i,
                    datum=c.datum.name,
                    rect=Rect((0, total)),
                    declared=Rect((0, capacity)),
                ))
        elif not c.duplicated:
            for a_idx, ra in enumerate(recorders):
                for rb in recorders[a_idx + 1:]:
                    hit = _first_overlap(
                        ra.writes.get(i, ()), rb.writes.get(i, ())
                    )
                    if hit is not None:
                        wa, wb = hit
                        errors.append(WriteRaceError(
                            f"segments {ra.segment} and {rb.segment} wrote "
                            f"overlapping regions of an injective output",
                            task=task_name,
                            container_index=i,
                            datum=c.datum.name,
                            rect=wa.intersect(wb),
                            declared=(
                                f"disjoint per-segment regions "
                                f"({c.pattern_name})"
                            ),
                        ))
    return errors


def _first_overlap(rects_a, rects_b):
    for a in rects_a:
        for b in rects_b:
            if a.overlaps(b) and not a.intersect(b).empty:
                return a, b
    return None
