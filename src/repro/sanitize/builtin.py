"""Built-in sanitizer scenarios: every shipped kernel and app, plus
deliberate violations the sanitizer must catch.

Two registries drive ``python -m repro.sanitize``:

* :data:`CONFORMANCE` — each entry runs a built-in kernel (or app) under
  the sanitizer and must come back clean; a numerical cross-check against
  a plain-numpy reference guards against the harness itself drifting.
* :data:`DEMOS` — each entry is a seeded bug (an out-of-pattern stencil
  read, a scatter race, an out-of-range reduction bin, a read of
  unaggregated partials) and must raise exactly the declared
  :class:`~repro.sanitize.errors.SanitizerError` subclass. A demo that
  *doesn't* raise means the sanitizer lost a detection class.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.datum import Vector, from_array
from repro.core.grid import Grid
from repro.core.task import Kernel
from repro.kernels import (
    gol_containers,
    gol_reference_step,
    histogram_containers,
    histogram_grid,
    make_gol_kernel,
    make_histogram_kernel,
    make_nbody_kernel,
    make_relu_grad_kernel,
    make_relu_kernel,
    make_saxpy_kernel,
    make_scale_kernel,
    make_spmv_kernel,
    make_sqdiff_reduce_kernel,
    make_sum_reduce_kernel,
    map_containers,
    nbody_containers,
    nbody_reference,
    spmv_containers,
    spmv_grid,
    CsrDatums,
)
from repro.kernels.game_of_life import make_gol_oob_kernel
from repro.patterns import (
    CLAMP,
    NO_CHECKS,
    WRAP,
    Permutation,
    ReductiveDynamic,
    StructuredInjective,
    UnstructuredInjective,
    Window1D,
)
from repro.sanitize.errors import (
    OutOfPatternReadError,
    OutOfRegionWriteError,
    UnaggregatedReadError,
    WriteRaceError,
)
from repro.sanitize.harness import SanitizeSession, sanitize_task


class ScenarioFailure(AssertionError):
    """A conformance scenario produced wrong numbers or spurious errors."""


def _check(cond: bool, what: str) -> None:
    if not cond:
        raise ScenarioFailure(what)


def _board(n: int = 32, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.random((n, n)) < 0.35).astype(np.int32)


# -- conformance scenarios ---------------------------------------------------
def gol_wrap(segments: int) -> None:
    board = _board()
    a = from_array(board, "gol.a")
    b = from_array(np.zeros_like(board), "gol.b")
    session = SanitizeSession(segments=segments)
    k = make_gol_kernel("maps_ilp")
    ref = board
    cur, nxt = a, b
    for _ in range(2):
        session.run(k, *gol_containers(cur, nxt, boundary=WRAP))
        ref = gol_reference_step(ref, wrap=True)
        cur, nxt = nxt, cur
    _check((session.array(cur) == ref).all(), "gol-wrap result mismatch")


def gol_clamp(segments: int) -> None:
    board = _board(seed=1)
    a = from_array(board, "golc.a")
    b = from_array(np.zeros_like(board), "golc.b")
    session = SanitizeSession(segments=segments)
    k = make_gol_kernel("naive")
    session.run(k, *gol_containers(a, b, variant="naive", boundary=CLAMP))
    # CLAMP duplicates the edge rows/cols; only the interior matches the
    # zero-padded reference — conformance, not physics, is under test.
    ref = gol_reference_step(board, wrap=False)
    _check(
        (session.array(b)[1:-1, 1:-1] == ref[1:-1, 1:-1]).all(),
        "gol-clamp interior mismatch",
    )


def histogram(segments: int) -> None:
    rng = np.random.default_rng(2)
    image = from_array(
        rng.integers(0, 256, (32, 32), dtype=np.int64), "hist.img"
    )
    hist = Vector(256, np.int64, "hist.out").bind(np.zeros(256, np.int64))
    session = SanitizeSession(segments=segments)
    session.run(
        make_histogram_kernel("maps"),
        *histogram_containers(image, hist),
        grid=histogram_grid(image),
    )
    out = session.aggregate(hist)
    ref = np.bincount(image.host.reshape(-1), minlength=256)
    _check((out == ref).all(), "histogram counts mismatch")


def saxpy(segments: int) -> None:
    n = 64
    rng = np.random.default_rng(3)
    x = from_array(rng.random(n, dtype=np.float32), "saxpy.x")
    y = from_array(rng.random(n, dtype=np.float32), "saxpy.y")
    y0 = y.host.copy()
    session = SanitizeSession(segments=segments)
    session.run(
        make_saxpy_kernel(),
        Window1D(x, 0, NO_CHECKS),
        Window1D(y, 0, NO_CHECKS),
        StructuredInjective(y),
        constants={"alpha": 2.0},
    )
    _check(
        np.allclose(session.array(y), 2.0 * x.host + y0),
        "saxpy result mismatch",
    )


def elementwise(segments: int) -> None:
    n = 48
    rng = np.random.default_rng(4)
    x = from_array(rng.standard_normal(n).astype(np.float32), "ew.x")
    session = SanitizeSession(segments=segments)

    scaled = Vector(n, np.float32, "ew.scaled")
    session.run(
        make_scale_kernel(), *map_containers([x], scaled),
        constants={"alpha": 3.0},
    )
    _check(
        np.allclose(session.array(scaled), 3.0 * x.host),
        "scale mismatch",
    )

    r = Vector(n, np.float32, "ew.relu")
    session.run(make_relu_kernel(), *map_containers([x], r))
    _check(
        (session.array(r) == np.maximum(x.host, 0)).all(), "relu mismatch"
    )

    dy = from_array(rng.standard_normal(n).astype(np.float32), "ew.dy")
    dx = Vector(n, np.float32, "ew.dx")
    session.run(make_relu_grad_kernel(), *map_containers([x, dy], dx))
    _check(
        (session.array(dx) == dy.host * (x.host > 0)).all(),
        "relu-grad mismatch",
    )


def reductions(segments: int) -> None:
    n = 64
    rng = np.random.default_rng(5)
    x = from_array(rng.random(n, dtype=np.float32), "red.x")
    b = from_array(rng.random(n, dtype=np.float32), "red.b")
    session = SanitizeSession(segments=segments)

    from repro.patterns import ReductiveStatic

    total = Vector(1, np.float64, "red.sum").bind(np.zeros(1, np.float64))
    session.run(
        make_sum_reduce_kernel(),
        Window1D(x, 0, NO_CHECKS), ReductiveStatic(total),
        grid=Grid((n,)),
    )
    _check(
        np.allclose(session.aggregate(total)[0], x.host.sum(dtype=np.float64)),
        "sum-reduce mismatch",
    )

    sq = Vector(1, np.float64, "red.sq").bind(np.zeros(1, np.float64))
    session.run(
        make_sqdiff_reduce_kernel(),
        Window1D(x, 0, NO_CHECKS), Window1D(b, 0, NO_CHECKS),
        ReductiveStatic(sq),
        grid=Grid((n,)),
    )
    d = x.host.astype(np.float64) - b.host
    _check(
        np.allclose(session.aggregate(sq)[0], (d * d).sum()),
        "sqdiff-reduce mismatch",
    )


def spmv(segments: int) -> None:
    import scipy.sparse as sp

    rng = np.random.default_rng(6)
    dense = rng.random((32, 32)) * (rng.random((32, 32)) < 0.3)
    csr = CsrDatums(sp.csr_matrix(dense.astype(np.float32)), "spmv.A")
    x = from_array(rng.random(32, dtype=np.float32), "spmv.x")
    y = Vector(32, np.float32, "spmv.y").bind(np.zeros(32, np.float32))
    session = SanitizeSession(segments=segments)
    session.run(
        make_spmv_kernel(), *spmv_containers(csr, x, y),
        grid=spmv_grid(csr),
    )
    ref = dense.astype(np.float32) @ x.host
    _check(np.allclose(session.array(y), ref, atol=1e-4), "spmv mismatch")


def nbody(segments: int) -> None:
    n = 32
    rng = np.random.default_rng(7)
    comps = [
        from_array(rng.random(n, dtype=np.float32), f"nb.{c}")
        for c in ("x", "y", "z", "m")
    ]
    outs = [Vector(n, np.float32, f"nb.a{c}") for c in ("x", "y", "z")]
    for o in outs:
        o.bind(np.zeros(n, np.float32))
    session = SanitizeSession(segments=segments)
    session.run(
        make_nbody_kernel(), *nbody_containers(*comps, *outs),
        grid=Grid((n,)),
    )
    ref = nbody_reference(*[c.host for c in comps])
    for o, r in zip(outs, ref):
        _check(np.allclose(session.array(o), r, atol=1e-3), "nbody mismatch")


def permutation_scatter(segments: int) -> None:
    """Unstructured Injective: disjoint per-segment scatter (reversal)."""
    n = 64
    src = from_array(np.arange(n, dtype=np.float32), "perm.src")
    dst = Vector(n, np.float32, "perm.dst").bind(np.zeros(n, np.float32))

    def body(ctx) -> None:
        inp, out = ctx.views
        lo, hi = ctx.work_rect[0].begin, ctx.work_rect[0].end
        idx = np.arange(lo, hi)
        out.scatter(n - 1 - idx, inp.array[idx])

    session = SanitizeSession(segments=segments)
    session.run(
        Kernel("permute-reverse", func=body),
        Permutation(src), UnstructuredInjective(dst),
        grid=Grid((n,)),
    )
    _check(
        (session.aggregate(dst) == src.host[::-1]).all(),
        "permutation mismatch",
    )


def dynamic_filter(segments: int) -> None:
    """Reductive (Dynamic): predicate filtering with per-segment appends."""
    n = 64
    rng = np.random.default_rng(8)
    x = from_array(rng.standard_normal(n).astype(np.float32), "filt.x")
    out = Vector(n, np.float32, "filt.out").bind(np.zeros(n, np.float32))

    def body(ctx) -> None:
        xin, dyn = ctx.views
        vals = xin.center()
        dyn.append(vals[vals > 0])

    session = SanitizeSession(segments=segments)
    session.run(
        Kernel("filter-positive", func=body),
        Window1D(x, 0, NO_CHECKS), ReductiveDynamic(out),
        grid=Grid((n,)),
    )
    session.aggregate(out)
    total = getattr(out, "dynamic_total", None)
    _check(total == int((x.host > 0).sum()), "filter count mismatch")


def scheduler_gol(segments: int) -> None:
    """The same conformance checks inside a full simulated 2-GPU run."""
    from repro.core.scheduler import Scheduler
    from repro.hardware import GTX_780
    from repro.sim import SimNode

    board = _board(seed=9)
    ref = gol_reference_step(gol_reference_step(board))
    node = SimNode(GTX_780, 2, functional=True)
    sched = Scheduler(node, sanitize=True)
    a = from_array(board, "sgol.a")
    b = from_array(np.zeros_like(board), "sgol.b")
    k = make_gol_kernel()
    sched.analyze_call(k, *gol_containers(a, b))
    sched.analyze_call(k, *gol_containers(b, a))
    sched.invoke(k, *gol_containers(a, b))
    sched.invoke(k, *gol_containers(b, a))
    sched.gather(a)
    _check((a.host == ref).all(), "scheduler gol mismatch")


def nmf_app(segments: int) -> None:
    from repro.apps.nmf import MapsNMF
    from repro.hardware import GTX_780
    from repro.sim import SimNode

    rng = np.random.default_rng(10)
    v = rng.random((32, 16), dtype=np.float32)
    node = SimNode(GTX_780, 2, functional=True)
    nmf = MapsNMF(node, v, k=4, seed=3, sanitize=True)
    e0 = nmf.error()
    nmf.run_iteration()
    nmf.sched.wait_all()
    _check(nmf.error() <= e0 * 1.01, "nmf error did not decrease")


def lenet_app(segments: int) -> None:
    from repro.apps.lenet import (
        LeNetParams,
        MapsLeNetTrainer,
        synthetic_mnist,
    )
    from repro.hardware import GTX_780
    from repro.sim import SimNode

    node = SimNode(GTX_780, 2, functional=True)
    trainer = MapsLeNetTrainer(
        node, LeNetParams.initialize(0), batch=16, mode="data",
        sanitize=True,
    )
    x, y = synthetic_mnist(16, seed=0)
    trainer.train_batch(x, y)


#: (name, runner) — must complete without SanitizerError.
CONFORMANCE: list[tuple[str, Callable[[int], None]]] = [
    ("gol-wrap", gol_wrap),
    ("gol-clamp", gol_clamp),
    ("histogram", histogram),
    ("saxpy", saxpy),
    ("elementwise", elementwise),
    ("reductions", reductions),
    ("spmv", spmv),
    ("nbody", nbody),
    ("permutation-scatter", permutation_scatter),
    ("dynamic-filter", dynamic_filter),
    ("scheduler-gol", scheduler_gol),
    ("nmf-app", nmf_app),
    ("lenet-app", lenet_app),
]


# -- violation demos ---------------------------------------------------------
def demo_gol_oob(segments: int) -> None:
    board = _board(seed=11)
    a = from_array(board, "oob.a")
    b = from_array(np.zeros_like(board), "oob.b")
    sanitize_task(
        make_gol_oob_kernel(),
        *gol_containers(a, b, variant="naive", boundary=WRAP),
        segments=segments,
    )


def demo_scatter_race(segments: int) -> None:
    n = 16
    src = from_array(np.arange(n, dtype=np.float32), "race.src")
    dst = Vector(n, np.float32, "race.dst").bind(np.zeros(n, np.float32))

    def body(ctx) -> None:
        inp, out = ctx.views
        # BUG: every segment claims flat index 0 — not injective.
        out.scatter(np.array([0]), inp.array[:1])

    sanitize_task(
        Kernel("scatter-collide", func=body),
        Permutation(src), UnstructuredInjective(dst),
        grid=Grid((n,)),
        segments=max(segments, 2),
    )


def demo_oob_bin(segments: int) -> None:
    rng = np.random.default_rng(12)
    image = from_array(
        rng.integers(0, 256, (16, 16), dtype=np.int64), "oobbin.img"
    )
    hist = Vector(256, np.int64, "oobbin.out").bind(np.zeros(256, np.int64))

    def body(ctx) -> None:
        img, h = ctx.views
        # BUG: bins shifted past the declared 256-bin extent.
        h.add_at(img.center() + 200)
        h.commit()

    sanitize_task(
        Kernel("histogram-shifted", func=body),
        *histogram_containers(image, hist),
        grid=histogram_grid(image),
        segments=segments,
    )


def demo_unaggregated_read(segments: int) -> None:
    rng = np.random.default_rng(13)
    image = from_array(
        rng.integers(0, 256, (16, 16), dtype=np.int64), "unagg.img"
    )
    hist = Vector(256, np.int64, "unagg.h").bind(np.zeros(256, np.int64))
    out = Vector(256, np.int64, "unagg.o").bind(np.zeros(256, np.int64))
    session = SanitizeSession(segments=segments)
    session.run(
        make_histogram_kernel("maps"),
        *histogram_containers(image, hist),
        grid=histogram_grid(image),
    )
    # BUG: consume the histogram without aggregating the partials.
    session.run(
        make_scale_kernel(),
        Window1D(hist, 0, NO_CHECKS), StructuredInjective(out),
        constants={"alpha": 1},
    )


def demo_scheduler_oob(segments: int) -> None:
    from repro.core.scheduler import Scheduler
    from repro.hardware import GTX_780
    from repro.sim import SimNode

    board = _board(seed=14)
    node = SimNode(GTX_780, 2, functional=True)
    sched = Scheduler(node, sanitize=True)
    a = from_array(board, "soob.a")
    b = from_array(np.zeros_like(board), "soob.b")
    k = make_gol_oob_kernel()
    sched.analyze_call(k, *gol_containers(a, b, variant="naive"))
    sched.invoke(k, *gol_containers(a, b, variant="naive"))
    sched.wait_all()


#: (name, expected SanitizerError subclass, runner).
DEMOS: list[tuple[str, type, Callable[[int], None]]] = [
    ("gol-out-of-pattern", OutOfPatternReadError, demo_gol_oob),
    ("scatter-race", WriteRaceError, demo_scatter_race),
    ("out-of-range-bin", OutOfRegionWriteError, demo_oob_bin),
    ("unaggregated-read", UnaggregatedReadError, demo_unaggregated_read),
    ("scheduler-out-of-pattern", OutOfPatternReadError, demo_scheduler_oob),
]
