"""The sanitizer's execution harness: run kernels segmented, record, check.

:class:`SanitizeSession` executes a task the way a multi-GPU node would —
the grid partitioned into whole-thread-block segments, each segment's
kernel body run against pattern views restricted to its share — but on
plain host arrays, with an :class:`~repro.sanitize.recorder.AccessRecorder`
wired into every view. After each segment the recording is judged against
the declared patterns (:func:`~repro.sanitize.checker.check_segment`);
after all segments, cross-segment properties are judged
(:func:`~repro.sanitize.checker.check_races`).

Aggregation semantics mirror the framework: duplicated outputs (reductive,
unstructured-injective) write per-segment *private* zero-initialized
duplicates that stay pending until :meth:`SanitizeSession.aggregate`
combines them — a task reading a pending datum raises
:class:`~repro.sanitize.errors.UnaggregatedReadError`, the dynamic
analogue of reading one device's histogram partial as if it were the
reduction.

Known false negatives (DESIGN.md §9): direct mutation of a structured
output's ``.array`` is not attributed per element (the view records only
``write()``/iterator writes); unmodified (``raw``) routines receive bare
arrays and are statically linted only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.core.datum import Datum
from repro.core.task import Kernel, Task
from repro.device_api.context import KernelContext
from repro.device_api.views import make_view
from repro.patterns.base import Aggregation, InputContainer, OutputContainer
from repro.patterns.output_patterns import combine
from repro.sanitize.checker import check_races, check_segment
from repro.sanitize.errors import LintIssue, SanitizerError, UnaggregatedReadError
from repro.sanitize.lint import lint_invocation
from repro.sanitize.recorder import AccessRecorder
from repro.utils.rect import Rect


class _HarnessBuffer:
    """Minimal stand-in for :class:`repro.sim.memory.DeviceBuffer`.

    Backs a full-datum region with a host array; the device-level views
    only need ``rect``, ``view()``, ``data``/``nbytes`` and an assignable
    ``dynamic_count``. Input buffers back the *whole* datum so that even
    out-of-footprint reads resolve to real values — the sanitizer observes
    and reports them instead of crashing on a missing halo.
    """

    def __init__(self, array: np.ndarray):
        self.data = array
        self.rect = Rect.from_shape(array.shape)
        self.dynamic_count = 0

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def view(self, rect: Rect) -> np.ndarray:
        return self.data[rect.slices()]


@dataclass
class _Pending:
    """Per-segment duplicated-output partials awaiting aggregation."""

    container: OutputContainer
    partials: list[np.ndarray] = field(default_factory=list)
    counts: list[int] = field(default_factory=list)


@dataclass
class SanitizeReport:
    """Outcome of one sanitized invocation."""

    task: str
    errors: list[SanitizerError] = field(default_factory=list)
    warnings: list[LintIssue] = field(default_factory=list)
    segments: int = 0

    @property
    def clean(self) -> bool:
        return not self.errors


class SanitizeSession:
    """Run tasks under the conformance sanitizer on host arrays.

    Args:
        segments: Number of simulated devices to partition each grid into
            (segments beyond the thread-block count stay idle, exactly as
            on a real node).
        strict: Raise the first :class:`SanitizerError` instead of
            collecting it into the report.
    """

    def __init__(self, segments: int = 3, strict: bool = True):
        if segments < 1:
            raise ValueError("need at least one segment")
        self.segments = segments
        self.strict = strict
        #: Canonical per-datum host state within this session.
        self._canonical: dict[Datum, np.ndarray] = {}
        #: Duplicated outputs written but not yet aggregated.
        self._pending: dict[Datum, _Pending] = {}
        self.reports: list[SanitizeReport] = []

    # -- datum state -------------------------------------------------------
    def array(self, datum: Datum) -> np.ndarray:
        """The session's canonical array for ``datum`` (created on first
        use from the bound host buffer, else zeros)."""
        arr = self._canonical.get(datum)
        if arr is None:
            if datum.host is not None:
                arr = np.array(datum.host, copy=True)
            else:
                arr = np.zeros(datum.shape, datum.dtype)
            self._canonical[datum] = arr
        return arr

    def pending(self, datum: Datum) -> bool:
        """Whether ``datum`` holds unaggregated partials."""
        return datum in self._pending

    def aggregate(self, datum: Datum) -> np.ndarray:
        """Combine pending per-segment partials into the canonical array
        (the harness analogue of the framework's gather-time aggregation)."""
        p = self._pending.pop(datum, None)
        if p is None:
            return self.array(datum)
        arr = self.array(datum)
        if p.container.aggregation is Aggregation.APPEND:
            total = 0
            for part, n in zip(p.partials, p.counts):
                n = min(n, arr.shape[0] - total)
                if n <= 0:
                    break
                arr[total : total + n] = part[:n]
                total += n
            arr_total = total
            datum.dynamic_total = arr_total  # type: ignore[attr-defined]
        else:
            arr[...] = combine(
                p.container.aggregation, p.partials
            ).astype(arr.dtype, copy=False)
        return arr

    # -- execution ---------------------------------------------------------
    def run(
        self,
        kernel: Kernel,
        *containers,
        grid=None,
        constants: Mapping[str, Any] | None = None,
    ) -> SanitizeReport:
        """Execute one task under the sanitizer.

        Returns the :class:`SanitizeReport`; in strict mode the first
        violation raises instead.
        """
        task = Task(kernel, containers, grid, constants)
        report = SanitizeReport(task=task.name)
        report.warnings = [
            i for i in lint_invocation(kernel, containers, grid=task.grid)
            if i.severity == "warning"
        ]
        self.reports.append(report)

        # Reading a datum whose last writer left unaggregated partials is
        # itself a violation — the values are one device's partial.
        for i, c in enumerate(task.containers):
            if isinstance(c, InputContainer) and self.pending(c.datum):
                self._emit(report, UnaggregatedReadError(
                    "task reads a datum whose reductive partials were "
                    "never aggregated",
                    task=task.name,
                    container_index=i,
                    datum=c.datum.name,
                ))

        work_shape = task.grid.shape
        rects = [
            r for r in task.grid.partition(self.segments) if not r.empty
        ]
        report.segments = len(rects)

        # Input snapshots are taken once, before any segment runs: an
        # in-place task (input and output on the same datum) must read the
        # pre-task values from every segment, as the framework's
        # write-after-read hazard tracking guarantees.
        in_bufs: dict[Datum, _HarnessBuffer] = {}
        for c in task.containers:
            if isinstance(c, InputContainer) and c.datum not in in_bufs:
                in_bufs[c.datum] = _HarnessBuffer(
                    np.array(self.array(c.datum), copy=True)
                )
        new_pending: dict[Datum, _Pending] = {}

        if kernel.raw:
            # Unmodified routines receive bare arrays — there is nothing
            # to record. Run functionally for session-state continuity;
            # conformance coverage is the static lint only.
            self._run_raw(task, rects, in_bufs)
            return report

        recorders: list[AccessRecorder] = []
        for seg, work_rect in enumerate(rects):
            rec = AccessRecorder(seg, work_rect)
            views = []
            dyn_views: list[tuple[int, Any]] = []
            for i, c in enumerate(task.containers):
                if isinstance(c, InputContainer):
                    buf = in_bufs[c.datum]
                elif c.duplicated:
                    p = new_pending.get(c.datum)
                    if p is None:
                        p = new_pending[c.datum] = _Pending(c)
                    private = np.zeros(c.datum.shape, c.datum.dtype)
                    p.partials.append(private)
                    buf = _HarnessBuffer(private)
                else:
                    buf = _HarnessBuffer(self.array(c.datum))
                view = make_view(
                    c, buf, work_shape, work_rect, recorder=rec, index=i
                )
                if (
                    isinstance(c, OutputContainer)
                    and c.duplicated
                    and c.aggregation is Aggregation.APPEND
                ):
                    dyn_views.append((i, view))
                views.append(view)
            ctx = KernelContext(
                device=seg,
                num_devices=len(rects),
                grid=task.grid,
                work_rect=work_rect,
                views=tuple(views),
                constants=task.constants,
            )
            kernel.func(ctx)
            for i, v in dyn_views:
                c = task.containers[i]
                new_pending[c.datum].counts.append(v.count)
            recorders.append(rec)
            for err in check_segment(
                task.name, task.containers, work_shape, rec
            ):
                self._emit(report, err)

        for err in check_races(
            task.name, task.containers, work_shape, recorders
        ):
            self._emit(report, err)

        # Dynamic-coverage warning: a declared input no segment ever read.
        touched: set[int] = set()
        for rec in recorders:
            touched |= rec.touched_inputs()
        for i, c in enumerate(task.containers):
            if isinstance(c, InputContainer) and i not in touched:
                report.warnings.append(LintIssue(
                    "warning", "unused-input",
                    f"declared input {c.datum.name!r} was never read by "
                    "any segment (over-declared footprint forces useless "
                    "copies)",
                    task=task.name, container_index=i,
                ))

        self._pending.update(new_pending)
        return report

    def _run_raw(self, task: Task, rects, in_bufs) -> None:
        from repro.core.unmodified import RoutineContext

        for seg, work_rect in enumerate(rects):
            params: list = []
            segments: list[Rect] = []
            for c in task.containers:
                if isinstance(c, InputContainer):
                    rect = c.required(task.grid.shape, work_rect).virtual
                    rect = rect.clip(Rect.from_shape(c.datum.shape))
                    arr = in_bufs[c.datum].view(rect)
                else:
                    rect = c.owned(task.grid.shape, work_rect)
                    arr = self.array(c.datum)[rect.slices()]
                params.append(arr)
                segments.append(rect)
            ctx = RoutineContext(
                device=seg,
                num_devices=len(rects),
                parameters=tuple(params),
                container_segments=tuple(segments),
                constants=task.constants,
                context=task.kernel.context,
            )
            task.kernel.func(ctx)

    def _emit(self, report: SanitizeReport, err: SanitizerError) -> None:
        report.errors.append(err)
        if self.strict:
            raise err


def sanitize_task(
    kernel: Kernel,
    *containers,
    grid=None,
    constants: Mapping[str, Any] | None = None,
    segments: int = 3,
    strict: bool = True,
) -> SanitizeReport:
    """One-shot convenience: run a single task under a fresh session and
    aggregate every duplicated output before returning."""
    session = SanitizeSession(segments=segments, strict=strict)
    report = session.run(
        kernel, *containers, grid=grid, constants=constants
    )
    for c in containers:
        if isinstance(c, OutputContainer) and c.duplicated:
            session.aggregate(c.datum)
    return report
