"""Access recording for one simulated "threadblock" (ROI segment).

An :class:`AccessRecorder` is threaded through
:func:`repro.device_api.views.make_view`; the views report every element
region they resolve — reads as virtual-coordinate :class:`Rect`s, writes as
rects or flat scatter indices — and flag accesses they can classify as
violations at resolution time (over-radius window offsets, out-of-range
scatter/bin indices, dynamic-output overflow). The recorder itself stays
dumb: it collects; :mod:`repro.sanitize.checker` judges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.utils.rect import Rect


@dataclass(frozen=True)
class AccessFlag:
    """A violation the view could classify while resolving the access.

    Attributes:
        kind: ``"over-radius-read"``, ``"oob-write-index"`` or
            ``"append-overflow"``.
        container_index: Offending container.
        rect: Observed region / index span (virtual coordinates).
        declared: The bound that was exceeded (rect or capacity).
        detail: Extra human-readable context for the report.
    """

    kind: str
    container_index: int
    rect: Optional[Rect] = None
    declared: Any = None
    detail: str = ""


class AccessRecorder:
    """Collects the actual accesses of one segment's kernel execution.

    Attributes:
        segment: ROI segment ordinal (device index in scheduler mode).
        device: Device the segment ran on (``None`` in harness mode).
        work_rect: The segment's share of the work space.
    """

    def __init__(
        self,
        segment: int,
        work_rect: Rect,
        device: int | None = None,
    ):
        self.segment = segment
        self.device = device
        self.work_rect = work_rect
        #: container index -> set of read rects (virtual datum coords).
        self.reads: dict[int, set[Rect]] = {}
        #: container index -> set of written rects (datum coords).
        self.writes: dict[int, set[Rect]] = {}
        #: container index -> list of scattered flat-index arrays.
        self.scatters: dict[int, list[np.ndarray]] = {}
        #: container index -> elements appended to a dynamic output.
        self.appends: dict[int, int] = {}
        #: violations classified by the views at access time.
        self.flags: list[AccessFlag] = []

    # -- recording entry points (called by the device-level views) ---------
    def record_read(self, index: int, rect: Rect) -> None:
        if not rect.empty:
            self.reads.setdefault(index, set()).add(rect)

    def record_write(self, index: int, rect: Rect) -> None:
        if not rect.empty:
            self.writes.setdefault(index, set()).add(rect)

    def record_scatter(self, index: int, flat_indices: np.ndarray) -> None:
        if flat_indices.size:
            self.scatters.setdefault(index, []).append(
                np.asarray(flat_indices).reshape(-1).copy()
            )

    def record_append(self, index: int, count: int) -> None:
        self.appends[index] = self.appends.get(index, 0) + int(count)

    def flag(self, flag: AccessFlag) -> None:
        self.flags.append(flag)

    # -- summaries ---------------------------------------------------------
    def touched_inputs(self) -> set[int]:
        """Container indices with at least one recorded read."""
        return set(self.reads)

    def scattered(self, index: int) -> np.ndarray:
        """All flat indices scattered to one container (may be empty)."""
        chunks = self.scatters.get(index)
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([c.astype(np.int64, copy=False) for c in chunks])
