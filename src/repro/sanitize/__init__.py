"""repro.sanitize — pattern-conformance sanitizer and race detector.

The declared memory access patterns of a task are a *contract*: the
scheduler copies exactly the data the input patterns require and gathers
exactly the regions the output patterns declare. A kernel that reads or
writes outside those footprints often still passes single-device tests —
everything is resident on one GPU — and only corrupts results on a
multi-GPU node, where the out-of-pattern elements are stale or absent.
This package makes such kernels fail loudly on the host, before any
multi-GPU run:

* :class:`SanitizeSession` / :func:`sanitize_task` — run a task segmented
  like a multi-GPU node, record every element access through the device
  views, and check conformance (DESIGN.md §9).
* ``Scheduler(node, sanitize=True)`` — the same checks inside a full
  simulated run.
* :func:`lint_invocation` — static declaration lint, no execution needed.
* ``python -m repro.sanitize`` — run every built-in kernel and app under
  the checker.
"""

from repro.sanitize.checker import check_races, check_segment
from repro.sanitize.errors import (
    LintIssue,
    OutOfPatternReadError,
    OutOfRegionWriteError,
    SanitizerError,
    UnaggregatedReadError,
    WriteRaceError,
)
from repro.sanitize.harness import (
    SanitizeReport,
    SanitizeSession,
    sanitize_task,
)
from repro.sanitize.lint import lint_invocation
from repro.sanitize.recorder import AccessFlag, AccessRecorder

__all__ = [
    "SanitizerError",
    "OutOfPatternReadError",
    "OutOfRegionWriteError",
    "WriteRaceError",
    "UnaggregatedReadError",
    "LintIssue",
    "AccessFlag",
    "AccessRecorder",
    "SanitizeSession",
    "SanitizeReport",
    "sanitize_task",
    "lint_invocation",
    "check_segment",
    "check_races",
]
