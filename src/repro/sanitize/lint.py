"""Static lint over task declarations (no kernel execution).

Catches declaration-level inconsistencies the dynamic checker would only
see as downstream effects — or not at all, when the broken declaration
prevents the task from ever being scheduled cleanly:

* shape/rank incompatibilities between containers and the grid (the
  pattern's ``required``/``owned`` raising for some legal partitioning),
* windows whose diameter exceeds the datum (every device degenerates to
  full replication — legal, but the declared locality is fictional),
* the same datum claimed by two output containers, or used both as a
  duplicated output and an input in one task (the duplicate and the input
  cannot be consistent),
* structured outputs whose owned regions overlap across devices (a
  guaranteed write-write race),
* structured outputs that leave part of the datum unwritten (stale
  elements survive the task — legal for updates, surprising otherwise),
* in-place stencils (same datum as a radius>0 window input and an
  injective output) — correct only thanks to the framework's input
  snapshotting, worth a warning.

Returns :class:`~repro.sanitize.errors.LintIssue` lists; ``error``
severity means the declaration cannot be trusted, ``warning`` means legal
but suspicious.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.core.grid import Grid
from repro.core.task import Kernel, Task
from repro.errors import MapsError, PatternMismatchError, SchedulingError
from repro.patterns.base import InputContainer, OutputContainer
from repro.patterns.input_patterns import WindowND
from repro.sanitize.errors import LintIssue
from repro.utils.rect import Rect

#: Device counts the partition probe simulates.
_PROBE_SEGMENTS = (1, 2, 3, 4)


def lint_invocation(
    kernel: Kernel,
    containers: Sequence,
    grid: Grid | None = None,
    constants: Mapping[str, Any] | None = None,
) -> list[LintIssue]:
    """Lint one prospective invocation; returns all findings."""
    issues: list[LintIssue] = []
    name = kernel.name
    try:
        task = Task(kernel, containers, grid, constants)
    except (PatternMismatchError, SchedulingError) as e:
        issues.append(LintIssue(
            "error", "invalid-declaration", str(e), task=name,
        ))
        return issues
    name = task.name
    work_shape = task.grid.shape

    for i, c in enumerate(task.containers):
        if isinstance(c, WindowND):
            for d, (r, s) in enumerate(zip(c.radius, c.datum.shape)):
                if 2 * r + 1 > s:
                    issues.append(LintIssue(
                        "warning", "window-exceeds-datum",
                        f"window diameter {2 * r + 1} exceeds datum extent "
                        f"{s} in dim {d}: every device requires the full "
                        "datum, the declared locality buys nothing",
                        task=name, container_index=i,
                    ))

    # Output uniqueness: two containers writing one datum in a single task
    # makes the post-task residency ambiguous (which writer wins?).
    writers: dict[Any, int] = {}
    for i, c in enumerate(task.containers):
        if not isinstance(c, OutputContainer):
            continue
        if c.datum in writers:
            issues.append(LintIssue(
                "error", "duplicate-output",
                f"datum {c.datum.name!r} is written by output containers "
                f"#{writers[c.datum]} and #{i}; one task may declare each "
                "output datum once",
                task=name, container_index=i,
            ))
        else:
            writers[c.datum] = i

    # A duplicated output's per-device private copies cannot coexist with
    # the same datum's input residency within one task.
    for i, c in enumerate(task.containers):
        if isinstance(c, OutputContainer) and c.duplicated:
            for j, other in enumerate(task.containers):
                if isinstance(other, InputContainer) and \
                        other.datum is c.datum:
                    issues.append(LintIssue(
                        "error", "duplicated-output-is-input",
                        f"datum {c.datum.name!r} is both a duplicated "
                        f"({c.pattern_name}) output and input #{j}: the "
                        "zero-initialized duplicate replaces the input "
                        "values on every device",
                        task=name, container_index=i,
                    ))

    # In-place stencil: reads neighbors of a datum it also overwrites.
    for i, c in enumerate(task.containers):
        if isinstance(c, WindowND) and any(r > 0 for r in c.radius):
            if any(
                isinstance(o, OutputContainer) and not o.duplicated
                and o.datum is c.datum
                for o in task.containers
            ):
                issues.append(LintIssue(
                    "warning", "inplace-stencil",
                    f"datum {c.datum.name!r} is read through a radius-"
                    f"{max(c.radius)} window and overwritten in place; "
                    "correct only because inputs are snapshotted before "
                    "the task runs",
                    task=name, container_index=i,
                ))

    # Partition probe: exercise required()/owned() for 1..4 devices; a
    # raise here means some device counts cannot schedule the task at all.
    for n in _PROBE_SEGMENTS:
        rects = task.grid.partition(n)
        owned_sets: dict[int, list[Rect]] = {}
        for rect in rects:
            if rect.empty:
                continue
            for i, c in enumerate(task.containers):
                try:
                    if isinstance(c, InputContainer):
                        c.required(work_shape, rect)
                    else:
                        owned = c.owned(work_shape, rect)
                        if not c.duplicated:
                            owned_sets.setdefault(i, []).append(owned)
                except (PatternMismatchError, MapsError) as e:
                    issues.append(LintIssue(
                        "error", "partition-mismatch",
                        f"container cannot segment for {n} device(s): {e}",
                        task=name, container_index=i,
                    ))
                    return issues
        for i, owns in owned_sets.items():
            c = task.containers[i]
            for a_idx, a in enumerate(owns):
                for b in owns[a_idx + 1:]:
                    if a.overlaps(b):
                        issues.append(LintIssue(
                            "error", "owned-overlap",
                            f"owned regions {a} and {b} overlap when "
                            f"partitioned over {n} device(s): guaranteed "
                            "write-write race",
                            task=name, container_index=i,
                        ))
            leftover = Rect.from_shape(c.datum.shape).subtract_all(owns)
            if leftover:
                issues.append(LintIssue(
                    "warning", "uncovered-output",
                    f"structured output leaves {leftover[0]} (and possibly "
                    f"more) unwritten when partitioned over {n} device(s); "
                    "stale elements survive the task",
                    task=name, container_index=i,
                ))
        if issues and any(i.code == "owned-overlap" for i in issues):
            break
    return _dedupe(issues)


def _dedupe(issues: list[LintIssue]) -> list[LintIssue]:
    seen = set()
    out = []
    for i in issues:
        key = (i.severity, i.code, i.task, i.container_index)
        if key not in seen:
            seen.add(key)
            out.append(i)
    return out
