"""Typed sanitizer violations and static-lint findings.

Each dynamic violation class corresponds to one way a kernel can break the
contract its declared access patterns promise the scheduler (DESIGN.md §9):

* :class:`OutOfPatternReadError` — the kernel read datum elements outside
  the footprint its *input* pattern entitles the segment to. On a real
  multi-GPU node those elements are simply not resident: the kernel reads
  garbage (or faults) while passing single-device tests.
* :class:`OutOfRegionWriteError` — the kernel wrote outside the region its
  *output* pattern declares (an injective segment's owned rect, a
  reductive datum's extent, a dynamic output's capacity).
* :class:`WriteRaceError` — two ROI segments of an injective output wrote
  overlapping regions. Injectivity is what lets the framework gather by
  concatenation / zero-init scatter-merge; a race makes the multi-GPU
  result depend on device count and copy ordering.
* :class:`UnaggregatedReadError` — a task read a datum whose last writer
  was a reductive task whose per-device partials were never aggregated;
  the values read are one device's partial, not the reduction.

All carry the offending kernel, segment, observed rect and declared bound,
and render them into the exception message.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MapsError


class SanitizerError(MapsError):
    """Base class for pattern-conformance violations.

    Attributes:
        task: Name of the offending kernel/task.
        container_index: Index of the violated container in the task's
            container tuple (``None`` when not container-specific).
        datum: Name of the datum involved.
        segment: ROI segment ordinal (the sanitizer's stand-in for a
            device index; ``None`` for cross-segment violations).
        device: Device index when the violation was caught inside a
            sanitize-mode scheduler run.
        rect: Observed access region (virtual datum coordinates), or a
            description of the offending flat indices.
        declared: The declared bound the access escaped (rect, list of
            rects, or capacity).
    """

    violation = "pattern violation"

    def __init__(
        self,
        message: str,
        *,
        task: str = "?",
        container_index: int | None = None,
        datum: str | None = None,
        segment: int | None = None,
        device: int | None = None,
        rect=None,
        declared=None,
    ):
        self.task = task
        self.container_index = container_index
        self.datum = datum
        self.segment = segment
        self.device = device
        self.rect = rect
        self.declared = declared
        super().__init__(self._render(message))

    def _render(self, message: str) -> str:
        lines = [f"{self.violation}: {message}", f"  task: {self.task}"]
        if self.datum is not None:
            where = f"  datum: {self.datum!r}"
            if self.container_index is not None:
                where += f" (container #{self.container_index})"
            lines.append(where)
        if self.segment is not None:
            seg = f"  segment: {self.segment}"
            if self.device is not None:
                seg += f" (device {self.device})"
            lines.append(seg)
        elif self.device is not None:
            lines.append(f"  device: {self.device}")
        if self.rect is not None:
            lines.append(f"  observed: {self.rect}")
        if self.declared is not None:
            lines.append(f"  declared: {self.declared}")
        return "\n".join(lines)


class OutOfPatternReadError(SanitizerError):
    """A segment read outside its declared input footprint."""

    violation = "out-of-pattern read"


class OutOfRegionWriteError(SanitizerError):
    """A segment wrote outside its declared output region."""

    violation = "out-of-region write"


class WriteRaceError(SanitizerError):
    """Two segments of an injective output wrote overlapping regions."""

    violation = "write-write race"


class UnaggregatedReadError(SanitizerError):
    """A task read reductive partials that were never aggregated."""

    violation = "unaggregated read"


@dataclass(frozen=True)
class LintIssue:
    """One finding of the static lint pass over a task declaration.

    Attributes:
        severity: ``"error"`` (the declaration cannot be trusted) or
            ``"warning"`` (legal but suspicious).
        code: Stable machine-readable identifier, e.g. ``"rank-mismatch"``.
        message: Human-readable explanation.
        task: Kernel name the issue was found on.
        container_index: Offending container index, when applicable.
    """

    severity: str
    code: str
    message: str
    task: str = "?"
    container_index: int | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f" [container #{self.container_index}]" \
            if self.container_index is not None else ""
        return f"{self.severity}({self.code}) {self.task}{where}: {self.message}"
