"""Simulated CUBLAS-XT: NVIDIA's host-API multi-GPU GEMM (§5.4 baseline).

CUBLAS-XT accepts *host* buffers only. Every call tiles the matrices,
copies A/B tiles host→device through pageable memory, runs the tile GEMMs,
and copies C tiles back — so chained multiplications pay full PCI-Express
round trips per call. The paper (Fig. 9, Table 4) measures exactly this
defect: XT is 3–5x slower than device-resident CUBLAS on one GPU, and its
multi-GPU scaling saturates on host-link bandwidth.

This baseline bypasses the MAPS scheduler entirely (it *is* the thing
MAPS-Multi is compared against) and queues commands straight onto a
:class:`~repro.sim.node.SimNode`.

Calibration: with tile copies overlapping tile GEMMs (XT's streams), the
call is transfer-bound and ``XT time ~= 8 N^3 / tile / bandwidth`` for the
default 1024 tile dimension; Table 4's XT column (1393.26 / 1830.82 /
1017.64 ms at N=8192) back-derives pageable-copy bandwidths of 3.08 /
2.35 / 4.22 GB/s for the three testbeds. Host chipsets differ per node,
so per-node pageable bandwidth is a property of the testbed, not the GPU.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


from repro.hardware.calibration import (
    DEFAULT_INTERCONNECT,
    InterconnectCalibration,
)
from repro.hardware.specs import GPUSpec
from repro.hardware.topology import HOST
from repro.libs.cublas import gemm_size_efficiency
from repro.sim.node import SimNode

#: CUBLAS-XT default block dimension.
DEFAULT_TILE = 1024

#: Pageable host-copy bandwidth per testbed (B/s), back-derived from
#: Table 4 as documented in the module docstring.
XT_PAGEABLE_BW = {
    "GTX 780": 3.08e9,
    "Titan Black": 2.35e9,
    "GTX 980": 4.22e9,
}


def xt_interconnect(spec: GPUSpec) -> InterconnectCalibration:
    """Interconnect calibration with the testbed's pageable bandwidth."""
    return replace(
        DEFAULT_INTERCONNECT, host_pageable_bw=XT_PAGEABLE_BW[spec.name]
    )


def make_xt_node(
    spec: GPUSpec, num_gpus: int, functional: bool = False
) -> SimNode:
    """A node configured with the testbed's pageable-copy bandwidth."""
    return SimNode(
        spec, num_gpus, functional=functional, interconnect=xt_interconnect(spec)
    )


@dataclass
class XtGemm:
    """One cublasXt handle bound to a node's GPUs."""

    node: SimNode
    tile: int = DEFAULT_TILE

    def __post_init__(self) -> None:
        g = self.node.num_gpus
        self._compute = [
            self.node.new_stream(d, "compute", f"xt.gpu{d}.compute")
            for d in range(g)
        ]
        self._h2d = [
            self.node.new_stream(d, "copy-in", f"xt.gpu{d}.h2d")
            for d in range(g)
        ]
        self._d2h = [
            self.node.new_stream(d, "copy-out", f"xt.gpu{d}.d2h")
            for d in range(g)
        ]

    def gemm(self, n: int) -> float:
        """Queue one ``n x n x n`` SGEMM from/to host buffers; returns the
        simulated elapsed time after draining the queues.

        C tiles are distributed round-robin over the GPUs; per C tile,
        every k-step copies one A tile and one B tile host→device through
        pageable staging (XT keeps no cross-call residency), then the tile
        result returns to the host.
        """
        node = self.node
        t0 = node.time
        b = self.tile
        ntiles = -(-n // b)
        g = node.num_gpus
        calib = node.devices[0].calib
        tile_flops = 2.0 * b * b * b
        tile_time = tile_flops / (
            calib.sgemm_flops * gemm_size_efficiency(b, b, b)
        )
        tile_bytes = b * b * 4
        c_index = 0
        for i in range(ntiles):
            for j in range(ntiles):
                dev = c_index % g
                c_index += 1
                for k in range(ntiles):
                    node.memcpy(
                        self._h2d[dev], HOST, dev, tile_bytes,
                        pageable=True, label=f"xt:A[{i},{k}]->gpu{dev}",
                    )
                    node.memcpy(
                        self._h2d[dev], HOST, dev, tile_bytes,
                        pageable=True, label=f"xt:B[{k},{j}]->gpu{dev}",
                    )
                    ev = node.record_event(self._h2d[dev])
                    node.wait_event(self._compute[dev], ev)
                    node.launch_kernel(
                        self._compute[dev], tile_time,
                        label=f"xt:gemm[{i},{j},{k}]@gpu{dev}",
                    )
                done = node.record_event(self._compute[dev])
                node.wait_event(self._d2h[dev], done)
                node.memcpy(
                    self._d2h[dev], dev, HOST, tile_bytes,
                    pageable=True, label=f"xt:C[{i},{j}]->host",
                )
        node.run()
        return node.time - t0


def xt_gemm_time(spec: GPUSpec, n: int, num_gpus: int = 1,
                 tile: int = DEFAULT_TILE) -> float:
    """Convenience: simulated time of one XT GEMM call on a fresh node."""
    node = make_xt_node(spec, num_gpus, functional=False)
    return XtGemm(node, tile).gemm(n)
