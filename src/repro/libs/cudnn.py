"""Simulated cuDNN v2: convolution and pooling primitives (§6.1).

All three deep-learning stacks the paper compares (Caffe, Torch,
MAPS-Multi) call the same cuDNN v2 routines — which is why their
single-GPU throughputs coincide in Fig. 11. Functional bodies use
numpy sliding windows; costs are FLOP counts over the calibrated
``cudnn_conv_efficiency`` fraction of FMA peak.

Layouts are NCHW throughout, filters KCRS, 'valid' convolution (LeNet
uses no padding).
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.hardware.calibration import GpuCalibration
from repro.hardware.specs import GPUSpec


# -- functional primitives -----------------------------------------------------
def conv2d_forward(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Valid cross-correlation: (B,C,H,W) x (K,C,R,S) -> (B,K,H',W')."""
    windows = sliding_window_view(x, w.shape[2:], axis=(2, 3))
    return np.einsum("bchwrs,kcrs->bkhw", windows, w, optimize=True)


def conv2d_backward_data(dy: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Gradient w.r.t. the input: full correlation with flipped filters."""
    r, s = w.shape[2:]
    dy_p = np.pad(dy, ((0, 0), (0, 0), (r - 1, r - 1), (s - 1, s - 1)))
    windows = sliding_window_view(dy_p, (r, s), axis=(2, 3))
    w_flip = w[:, :, ::-1, ::-1]
    return np.einsum("bkhwrs,kcrs->bchw", windows, w_flip, optimize=True)


def conv2d_backward_filter(x: np.ndarray, dy: np.ndarray) -> np.ndarray:
    """Gradient w.r.t. the filters: correlate inputs with output grads.

    ``dw[k,c,r,s] = sum_{b,h,w} x[b,c,h+r,w+s] * dy[b,k,h,w]`` — sliding
    dy-sized windows over x, one per (r,s) filter offset.
    """
    windows = sliding_window_view(x, dy.shape[2:], axis=(2, 3))
    # windows: (B, C, R, S, H', W')
    return np.einsum("bcrshw,bkhw->kcrs", windows, dy, optimize=True)


def maxpool2x2_forward(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """2x2/stride-2 max pooling. Returns (pooled, argmax-index array)."""
    b, c, h, w = x.shape
    assert h % 2 == 0 and w % 2 == 0, "LeNet pools even extents"
    tiles = x.reshape(b, c, h // 2, 2, w // 2, 2).transpose(0, 1, 2, 4, 3, 5)
    flat = tiles.reshape(b, c, h // 2, w // 2, 4)
    arg = flat.argmax(axis=-1)
    return flat.max(axis=-1), arg.astype(np.int8)


def maxpool2x2_backward(
    dy: np.ndarray, arg: np.ndarray, in_shape: tuple[int, ...]
) -> np.ndarray:
    """Route gradients to each pooling window's argmax element."""
    b, c, hh, ww = dy.shape
    dx_tiles = np.zeros((b, c, hh, ww, 4), dtype=dy.dtype)
    np.put_along_axis(dx_tiles, arg[..., None].astype(np.int64), dy[..., None], axis=-1)
    dx = dx_tiles.reshape(b, c, hh, ww, 2, 2).transpose(0, 1, 2, 4, 3, 5)
    return dx.reshape(in_shape)


# -- cost models ----------------------------------------------------------------
def conv_flops(
    batch: int, in_ch: int, out_ch: int, out_h: int, out_w: int,
    r: int, s: int,
) -> float:
    return 2.0 * batch * out_ch * in_ch * out_h * out_w * r * s


def conv_time(
    spec: GPUSpec, calib: GpuCalibration, flops: float
) -> float:
    """cuDNN kernel time at the calibrated conv efficiency."""
    return flops / (spec.peak_sp_gflops * 1e9 * calib.cudnn_conv_efficiency)


def pool_time(spec: GPUSpec, calib: GpuCalibration, elems: int,
              itemsize: int = 4) -> float:
    """Pooling is memory bound: one read of the input, one write of the
    (4x smaller) output."""
    nbytes = elems * itemsize * 1.25
    return nbytes / (spec.mem_bandwidth * calib.stream_efficiency)
