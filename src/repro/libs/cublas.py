"""Simulated CUBLAS: single-GPU BLAS routines with calibrated throughput.

The paper's SGEMM experiments (§5.1, §5.4, Table 4) run *unmodified*
CUBLAS through the §4.6 wrapper mechanism — MAPS-Multi partitions the
matrices and calls the native routine per device. This module provides
those wrappers: the functional bodies are numpy BLAS calls; the cost
models use the per-architecture effective SGEMM rates back-derived from
Table 4 (see :mod:`repro.hardware.calibration`).
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.core.datum import Datum
from repro.core.task import CostContext, Kernel
from repro.core.unmodified import RoutineContext, make_routine
from repro.patterns import (
    NO_CHECKS,
    Block2D,
    Block2DTransposed,
    StructuredInjective,
    Window1D,
    WindowND,
)


@dataclass
class CublasContext:
    """Per-GPU library handles (the Fig. 5 ``CUBLASContext``). In the
    simulation the handle is just a created-flag, but user code follows
    the same create-handles-then-pass-context protocol as with the real
    library."""

    num_gpus: int
    handles: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.handles = [f"cublas-handle-{d}" for d in range(self.num_gpus)]


def gemm_size_efficiency(m: int, n: int, k: int) -> float:
    """Fraction of the large-matrix SGEMM rate achieved at a given size.

    Large GEMMs run at the calibrated Table 4 rate; GEMMs whose smallest
    dimension drops below the blocking tile (~128) lose efficiency roughly
    linearly in that dimension (tile under-utilization), floored at 5 %.
    """
    smallest = min(m, n, k)
    return max(0.05, min(1.0, smallest / 128.0))


def gemm_flops(m: int, n: int, k: int) -> float:
    return 2.0 * m * n * k


def gemm_time(ctx: CostContext, m: int, n: int, k: int) -> float:
    """Modelled SGEMM device time at the calibrated effective rate."""
    rate = ctx.calib.sgemm_flops * gemm_size_efficiency(m, n, k)
    return gemm_flops(m, n, k) / rate


def make_sgemm_routine(context: CublasContext | None = None) -> Kernel:
    """``C = alpha * A @ B + beta * C`` partitioned by rows of C.

    Containers: ``Block2D(A), Block2DTransposed(B), StructuredInjective(C)``
    (Table 1's matrix-multiplication patterns), plus ``WindowND(C, 0)``
    prepended when ``beta != 0`` (C is then read-write).
    Constants: ``alpha`` (default 1), ``beta`` (default 0).
    """

    def body(rc: RoutineContext) -> None:
        alpha = rc.constant("alpha", 1.0)
        beta = rc.constant("beta", 0.0)
        if beta:
            c_in, a, b, c = rc.parameters
            c[...] = alpha * (a @ b) + beta * c_in
        else:
            a, b, c = rc.parameters
            c[...] = alpha * (a @ b)

    def cost(ctx: CostContext) -> float:
        out = next(
            c for c in ctx.containers if isinstance(c, StructuredInjective)
        )
        owned = out.owned(ctx.grid.shape, ctx.work_rect)
        m_local, n = owned.shape
        a = next(c for c in ctx.containers if isinstance(c, Block2D))
        k = a.datum.shape[1]
        return gemm_time(ctx, m_local, n, k)

    return make_routine("cublasSgemm", body, cost=cost, context=context)


def sgemm_containers(a: Datum, b: Datum, c: Datum, beta: float = 0.0):
    """The matmul container tuple (first/second operand patterns of
    Table 1)."""
    base = (Block2D(a), Block2DTransposed(b), StructuredInjective(c))
    if beta:
        return (WindowND(c, 0, NO_CHECKS),) + base
    return base


def make_saxpy_routine(context: CublasContext | None = None) -> Kernel:
    """``y = alpha * x + y`` — the Fig. 5 wrapper. Containers:
    ``Window1D(x, 0), Window1D(y, 0), StructuredInjective(y)``."""

    def body(rc: RoutineContext) -> None:
        alpha = rc.constant("alpha", 0.0)
        n = rc.segment_dims(2)[0]
        x, y_in, y_out = rc.parameters
        assert y_out.shape[0] == n
        y_out[...] = alpha * x + y_in

    def cost(ctx: CostContext) -> float:
        out = ctx.containers[2]
        elems = out.owned(ctx.grid.shape, ctx.work_rect).size
        return 3 * 4 * elems / (
            ctx.spec.mem_bandwidth * ctx.calib.stream_efficiency
        )

    return make_routine("cublasSaxpy", body, cost=cost, context=context)


def saxpy_containers(x: Datum, y: Datum):
    return (
        Window1D(x, 0, NO_CHECKS),
        Window1D(y, 0, NO_CHECKS),
        StructuredInjective(y),
    )
