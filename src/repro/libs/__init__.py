"""Simulated vendor libraries: CUBLAS, CUBLAS-XT, CUB, cuDNN."""

from repro.libs.cublas import (
    CublasContext,
    make_saxpy_routine,
    make_sgemm_routine,
    saxpy_containers,
    sgemm_containers,
)
from repro.libs.cub import make_cub_histogram_routine
from repro.libs.cublasxt import XtGemm, make_xt_node, xt_gemm_time

__all__ = [
    "CublasContext",
    "make_sgemm_routine",
    "make_saxpy_routine",
    "sgemm_containers",
    "saxpy_containers",
    "make_cub_histogram_routine",
    "XtGemm",
    "make_xt_node",
    "xt_gemm_time",
]
