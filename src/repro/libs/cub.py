"""Simulated CUB histogram (the §5.3 comparator).

CUB ships architecture- and algorithm-specific tuned histogram kernels;
the paper runs it single-GPU and, via the §4.6 unmodified-routine
mechanism, multi-GPU. Its calibrated rates honour §5.3's orderings: MAPS
beats CUB on the GTX 780; CUB wins on the Titan Black and more so on the
GTX 980 ("architecture and algorithm-specific optimizations, which, by
design, cannot be incorporated in the generic MAPS-Multi framework").
"""

from __future__ import annotations

import numpy as np

from repro.core.task import CostContext, Kernel
from repro.core.unmodified import RoutineContext, make_routine
from repro.patterns import Window2D


def make_cub_histogram_routine() -> Kernel:
    """``cub::DeviceHistogram::HistogramEven`` equivalent.

    Containers: ``Window2D(image, 0, NO_CHECKS), ReductiveStatic(hist)`` —
    the same pattern declaration as the MAPS kernel; only the device code
    (and its calibrated rate) differs.
    """

    def body(rc: RoutineContext) -> None:
        image, hist = rc.parameters
        hist += np.bincount(
            image.reshape(-1), minlength=hist.size
        ).astype(hist.dtype)

    def cost(ctx: CostContext) -> float:
        win = next(c for c in ctx.containers if isinstance(c, Window2D))
        pixels = win.required(ctx.grid.shape, ctx.work_rect).virtual.size
        return pixels / ctx.calib.cub_hist_rate

    return make_routine("cubHistogram", body, cost=cost)
