"""Cluster extension (paper §8 future work): MAPS-Multi across nodes."""

from repro.cluster.network import ClusterNetwork, NetworkCalibration
from repro.cluster.stencil import ClusterStencil

__all__ = ["ClusterNetwork", "NetworkCalibration", "ClusterStencil"]
