"""Cluster extension (paper §8 future work): MAPS-Multi across nodes,
with master/agent fault tolerance (DESIGN.md §15)."""

from repro.cluster.agent import NodeAgent
from repro.cluster.faults import (
    ClusterFaultPlan,
    LinkFault,
    NodeCrash,
    NodeRepair,
    Partition,
    SlowLink,
)
from repro.cluster.master import ClusterMaster, MembershipEvent
from repro.cluster.monitor import CheckpointRecord, ClusterMonitor, GhostRecord
from repro.cluster.network import ClusterNetwork, NetworkCalibration
from repro.cluster.stencil import ClusterStencil

__all__ = [
    "ClusterNetwork",
    "NetworkCalibration",
    "ClusterStencil",
    "ClusterMaster",
    "MembershipEvent",
    "NodeAgent",
    "ClusterMonitor",
    "CheckpointRecord",
    "GhostRecord",
    "ClusterFaultPlan",
    "NodeCrash",
    "NodeRepair",
    "LinkFault",
    "Partition",
    "SlowLink",
]
