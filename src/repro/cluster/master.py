"""The cluster master: fault-tolerant bulk-synchronous drive loop
(DESIGN.md §15).

:class:`ClusterMaster` runs on the head node and owns everything *between*
the nodes: the slab decomposition (via the hierarchical
:class:`~repro.cluster.monitor.ClusterMonitor`), the per-tick command
dispatch to each :class:`~repro.cluster.agent.NodeAgent`, the ghost
exchange over the simulated fabric, heartbeat-based failure detection,
coordinated slab checkpoints, and the recovery ladder. Its drive loop is
deliberately simple::

    while tick < target:
        try:    attempt one bulk-synchronous tick
        except node unreachable: recover (fence, re-slab, roll back)

Everything runs in **simulated cluster time**: retries back off in
simulated seconds, heartbeat misses are counted against the simulated
send schedule, recovery transfers occupy the simulated fabric. With no
:class:`~repro.cluster.faults.ClusterFaultPlan` installed the master adds
*zero* overhead — no heartbeats, no checkpoints, no extra messages — and
the schedule is identical to the pre-fault-tolerance cluster layer
(asserted by the timing benchmarks).

Recovery (the tentpole protocol):

1. **Detect** — a node stops acking (heartbeat-miss math in
   :meth:`_declared_dead`), crashes mid-compute, lands on the wrong side
   of a partition past the retry budget, or escalates an intra-node
   :class:`~repro.errors.UnrecoverableError`.
2. **Fence** — the node is marked dead (crash: host memory poisoned) or
   fenced (partition: intact but excluded forever), and the typed error
   is appended to :attr:`events`.
3. **Check** — partitions need the master to keep a strict majority;
   every board row needs a surviving checkpoint replica
   (:meth:`ClusterMonitor.coverage_gap`). Otherwise
   :class:`~repro.errors.ClusterRecoveryError`.
4. **Re-slab** — survivors get a fresh near-even decomposition; each new
   slab's rows (interior plus ghosts) are fetched peer-to-peer from
   checkpoint holders over the fabric and rebuilt into fresh schedulers
   restricted to each node's surviving GPUs.
5. **Roll back & replay** — the cluster rewinds to the checkpoint tick
   and replays through the normal drive loop. Functional compute is
   deterministic and decomposition-independent, so the replayed board is
   **bit-identical** to the fault-free run.
6. **Cross-check** — edge rows the dead node had shipped into surviving
   neighbours' ghost regions are compared against the replayed rows once
   the replay re-reaches the failure tick (``"ghost-mismatch"`` if the
   recovered state diverges).
"""

from __future__ import annotations

import math

import numpy as np

from repro.cluster.agent import NodeAgent
from repro.cluster.faults import ClusterFaultPlan
from repro.cluster.monitor import ClusterMonitor, GhostRecord
from repro.cluster.network import ClusterNetwork, NetworkCalibration
from repro.core import Kernel
from repro.errors import (
    ClusterRecoveryError,
    LinkError,
    NodeFailure,
    PartitionError,
    SchedulingError,
    UnrecoverableError,
)
from repro.hardware.specs import GPUSpec


class _Unreachable(Exception):
    """Internal control flow: one or more nodes were declared lost during
    a tick attempt. Carries the typed public errors; never escapes
    :meth:`ClusterMaster.step`."""

    def __init__(
        self,
        errors: list[NodeFailure | LinkError],
        nodes: list[int],
        at: float,
    ):
        super().__init__("; ".join(str(e) for e in errors))
        self.errors = errors
        self.nodes = nodes
        self.at = at


class ClusterMaster:
    """Master/agent execution of a 2-D stencil across multi-GPU nodes.

    Args:
        spec: GPU model of every node (``node_specs`` overrides per node).
        num_nodes: Number of multi-GPU nodes.
        gpus_per_node: GPUs per node.
        board: Initial global board array, or ``(rows, cols)`` for
            timing-only runs.
        kernel: The per-tick stencil kernel.
        radius: Stencil radius (ghost depth).
        functional: Functional vs timing-only per-node simulation.
        network: Fabric calibration.
        wrap: Cyclic (toroidal) row boundary via ring exchange.
        faults: Optional :class:`ClusterFaultPlan`. When None the master
            runs the plain fault-intolerant schedule (no heartbeats, no
            checkpoints — zero overhead).
        node_specs: Optional per-node GPU spec overrides, e.g. a
            capacity-clamped spec to compose cluster faults with the
            memory-pressure ladder on one node.
    """

    #: Recoveries within one ``step()`` before the master gives up.
    MAX_RECOVERIES_PER_STEP = 16

    def __init__(
        self,
        spec: GPUSpec,
        num_nodes: int,
        gpus_per_node: int,
        board: np.ndarray | tuple[int, int],
        kernel: Kernel,
        radius: int = 1,
        functional: bool = True,
        network: NetworkCalibration | None = None,
        wrap: bool = False,
        faults: ClusterFaultPlan | None = None,
        node_specs: dict[int, GPUSpec] | None = None,
    ):
        if isinstance(board, tuple):
            rows, cols = board
            board_arr = None
            if functional:
                raise SchedulingError(
                    "functional mode requires an actual board"
                )
        else:
            board_arr = np.ascontiguousarray(board)
            rows, cols = board_arr.shape
        if rows % num_nodes != 0:
            raise SchedulingError(
                f"board rows {rows} not divisible by {num_nodes} nodes"
            )
        if rows // num_nodes <= radius:
            raise SchedulingError("slab thinner than the stencil radius")
        self.rows, self.cols = rows, cols
        self.radius = radius
        self.wrap = wrap
        self.num_nodes = num_nodes
        self.kernel = kernel
        self.functional = functional
        self.faults = faults
        self.network = ClusterNetwork(num_nodes, network)
        self.monitor = ClusterMonitor(rows, cols, radius, 4)
        #: Typed failure errors in detection order (observability).
        self.events: list[Exception] = []
        #: One dict per recovery, for reports and tests.
        self.recovery_log: list[dict] = []

        specs = node_specs or {}
        self.agents: dict[int, NodeAgent] = {}
        for i in range(num_nodes):
            plan = faults.node_plans.get(i) if faults is not None else None
            self.agents[i] = NodeAgent(
                i,
                specs.get(i, spec),
                gpus_per_node,
                cols,
                kernel,
                radius,
                functional,
                faults=plan,
            )
        self.monitor.node_monitors = {
            i: ag.sched.monitor for i, ag in self.agents.items()
        }
        slabs = self.monitor.assign(
            list(range(num_nodes)), min_rows=radius + 1
        )
        for i, (lo, hi) in slabs.items():
            region = (
                self._board_region(board_arr, lo, hi)
                if board_arr is not None
                else None
            )
            self.agents[i].build(lo, hi, region, which=0)

        self.tick = 0
        self._target = 0
        #: Master clock = the last barrier time.
        self._clock = 0.0
        #: Monotonic checkpoint id (agents' store key; see monitor).
        self._ckpt_seq = 0
        #: Pending ghost-replica integrity probes: (tick, lo, hi, data).
        self._ghost_checks: list[tuple[int, int, int, np.ndarray | None]] = []
        if faults is not None:
            # Tick-0 coordinated checkpoint: the initial board is known to
            # the master, so local snapshots are free (no device gather);
            # replica shipping occupies the fabric like any checkpoint.
            self._drive(self._checkpoint_now)

    # -- initial data ---------------------------------------------------------
    def _board_region(
        self, board: np.ndarray, lo: int, hi: int
    ) -> np.ndarray:
        """Extended slab content (ghosts included) for rows [lo, hi)."""
        r = self.radius
        region = np.zeros((hi - lo + 2 * r, self.cols), np.int32)
        region[r : r + (hi - lo)] = board[lo:hi]
        if self.wrap or lo - r >= 0:
            idx = np.arange(lo - r, lo)
            region[:r] = board[idx % self.rows if self.wrap else idx]
        if self.wrap or hi + r <= self.rows:
            idx = np.arange(hi, hi + r)
            region[r + (hi - lo) :] = board[
                idx % self.rows if self.wrap else idx
            ]
        return region

    # -- messaging ------------------------------------------------------------
    def _reach(self, node: int, t: float) -> float:
        """Deliver a control message (tick command / heartbeat) to
        ``node``, retrying through transient partitions. Control messages
        are metadata-sized and ride the fabric's control plane: delivery
        is free in simulated time, but *failed* delivery costs the ack
        timeout plus backoff per attempt. Returns the delivery time."""
        fp = self.faults
        if fp is None:
            return t
        t_try = t
        live = self.monitor.order()
        for attempt in range(1, fp.max_retries + 2):
            if not fp.crashed(node, t_try) and node in fp.master_group(
                live, t_try
            ):
                return t_try
            if attempt > fp.max_retries:
                break
            fp.messages_retried += 1
            t_try += fp.ack_timeout + fp.backoff(attempt)
        if fp.crashed(node, t_try):
            declared = self._declared_dead(node, fp.crash_time(node))
            err = NodeFailure(
                f"node {node} stopped answering heartbeats "
                f"(crashed at t={fp.crash_time(node):.6f}s, declared dead "
                f"at t={declared:.6f}s)",
                node=node,
                time=declared,
                cause="crash",
            )
            raise _Unreachable([err], [node], max(t_try, declared))
        isolated = tuple(
            n for n in live if n not in fp.master_group(live, t_try)
        )
        err = PartitionError(
            f"nodes {list(isolated)} unreachable past the retry budget: "
            f"fabric partition (fencing the minority at t={t_try:.6f}s)",
            isolated=isolated,
            src=-1,
            dst=node,
            time=t_try,
            attempts=fp.max_retries + 1,
        )
        raise _Unreachable([err], list(isolated), t_try)

    def _send(
        self, src: int, dst: int, nbytes: int, ready: float, what: str
    ) -> float:
        """One inter-node data message (ghost rows, checkpoint replica,
        recovery fetch) with loss retry. Returns the arrival time."""
        fp = self.faults
        if fp is None:
            return self.network.transfer(src, dst, nbytes, ready)
        t_try = ready
        for attempt in range(1, fp.max_retries + 2):
            if fp.crashed(src, t_try):
                declared = self._declared_dead(src, fp.crash_time(src))
                err = NodeFailure(
                    f"node {src} crashed before sending {what} to {dst}",
                    node=src,
                    time=declared,
                    cause="crash",
                )
                raise _Unreachable([err], [src], max(t_try, declared))
            lost = (
                fp.crashed(dst, t_try)
                or not fp.reachable(src, dst, t_try)
                or fp.link_fault_now(src, dst)
            )
            if not lost:
                return self.network.transfer(
                    src,
                    dst,
                    nbytes,
                    t_try,
                    factor=fp.slow_factor(src, dst, t_try),
                )
            if attempt > fp.max_retries:
                t_try += fp.ack_timeout
                break
            fp.messages_retried += 1
            t_try += fp.ack_timeout + fp.backoff(attempt)
        # Retry budget exhausted: classify.
        if fp.crashed(dst, t_try):
            declared = self._declared_dead(dst, fp.crash_time(dst))
            err = NodeFailure(
                f"node {dst} crashed; {what} from {src} undeliverable",
                node=dst,
                time=declared,
                cause="crash",
            )
            raise _Unreachable([err], [dst], max(t_try, declared))
        live = self.monitor.order()
        if not fp.reachable(src, dst, t_try):
            isolated = tuple(
                n for n in live if n not in fp.master_group(live, t_try)
            )
            err = PartitionError(
                f"{what} {src}->{dst} undeliverable: fabric partition "
                f"(fencing nodes {list(isolated)})",
                isolated=isolated,
                src=src,
                dst=dst,
                time=t_try,
                attempts=fp.max_retries + 1,
            )
            raise _Unreachable(
                [err], list(isolated) or [dst], t_try
            )
        # Persistently lossy link with both endpoints alive: fail-stop
        # semantics for the receiver — a link that stays bad past the
        # retry budget is indistinguishable from a dead NIC.
        err = LinkError(
            f"{what} {src}->{dst} lost {fp.max_retries + 1} times: "
            f"link/NIC declared faulty, fencing receiver {dst}",
            src=src,
            dst=dst,
            time=t_try,
            attempts=fp.max_retries + 1,
        )
        raise _Unreachable([err], [dst], t_try)

    def _declared_dead(self, node: int, t_crash: float) -> float:
        """Heartbeat-detection time for a node that fail-stopped at
        ``t_crash``: the first ``miss_threshold`` consecutive heartbeat
        sends after the crash each miss their ack; sends scheduled while
        the node's links are still draining queued transfers
        (:meth:`ClusterNetwork.busy_until`) are skipped rather than
        counted — a node finishing a checkpoint is busy, not dead."""
        fp = self.faults
        h = fp.heartbeat_interval
        t_send = (math.floor(t_crash / h) + 1) * h
        misses = 0
        last = t_send
        while misses < fp.miss_threshold:
            busy = self.network.busy_until(node)
            if busy > t_send:
                t_send = (math.floor(busy / h) + 1) * h
                continue
            misses += 1
            fp.heartbeats_missed += 1
            last = t_send
            t_send += h
        return last + fp.heartbeat_timeout

    # -- the drive loop -------------------------------------------------------
    def step(self) -> None:
        """Advance the cluster by one tick, recovering from any node
        losses encountered on the way (which may involve rolling back to
        the last coordinated checkpoint and replaying)."""
        self._target = self.tick + 1
        self._drive(self._attempt_tick)

    def _drive(self, attempt) -> None:
        """Run ``attempt`` until the target tick is reached, entering the
        recovery ladder on every declared node loss."""
        recoveries = 0
        pending: _Unreachable | None = None
        while True:
            try:
                if pending is not None:
                    u, pending = pending, None
                    # Recovery may itself lose a node (a survivor dies
                    # while serving checkpoint fetches): the nested
                    # _Unreachable lands back here and recovery restarts
                    # against the further-shrunk cluster.
                    self._recover(u)
                    attempt = self._attempt_tick
                else:
                    attempt()
            except _Unreachable as exc:
                recoveries += 1
                if recoveries > self.MAX_RECOVERIES_PER_STEP:
                    raise ClusterRecoveryError(
                        "recovery is thrashing: "
                        f"{recoveries} node losses within one step",
                        reason="thrashing",
                        time=exc.at,
                    ) from exc
                pending = exc
                continue
            if self.tick >= self._target:
                return

    def _attempt_tick(self) -> None:
        """One bulk-synchronous tick: dispatch, compute, exchange,
        barrier, bookkeeping. Raises ``_Unreachable`` on any node loss."""
        fp = self.faults
        tick = self.tick
        src_i, dst_i = tick % 2, (tick + 1) % 2
        ring = self.monitor.order()
        multi = len(ring) > 1 or self.wrap
        r = self.radius
        nbytes = r * self.cols * 4

        # Phase A: dispatch the tick command (reachability check; free on
        # delivery, but transient partitions delay a node's start).
        starts: dict[int, float] = {}
        if fp is not None:
            for n in ring:
                starts[n] = self._reach(n, self._clock)

        # Phase B: local compute + edge gather per node (own clocks).
        finish: dict[int, float] = {}
        lost: list[NodeFailure] = []
        for n in ring:
            ag = self.agents[n]
            if fp is not None:
                ag.node.host_advance(max(0.0, starts[n] - ag.node.time))
            try:
                t_f = ag.compute(src_i, dst_i, multi)
            except UnrecoverableError as e:
                err = NodeFailure(
                    f"node {n} reported intra-node recovery exhausted: {e}",
                    node=n,
                    time=ag.node.time,
                    cause="agent-error",
                )
                raise _Unreachable([err], [n], ag.node.time) from e
            if fp is not None and fp.crashed(n, t_f):
                t_c = fp.crash_time(n)
                declared = self._declared_dead(n, t_c)
                lost.append(
                    NodeFailure(
                        f"node {n} crashed mid-compute at t={t_c:.6f}s "
                        f"(declared dead at t={declared:.6f}s)",
                        node=n,
                        time=declared,
                        cause="crash",
                    )
                )
            else:
                finish[n] = t_f
        if lost:
            raise _Unreachable(
                lost, [e.node for e in lost], max(e.time for e in lost)
            )

        # Phase C: ghost exchange over the fabric.
        ghost_records: list[GhostRecord] = []
        done = dict(finish)
        if multi:
            for pos, n in enumerate(ring):
                ag = self.agents[n]
                te, be, _, _ = ag.edge_rects()
                for dpos, src_rect, is_top in (
                    (pos - 1, te, True),  # my top edge -> upper
                    (pos + 1, be, False),  # neighbor's bottom ghost, &vv
                ):
                    if self.wrap:
                        dpos %= len(ring)
                    elif not 0 <= dpos < len(ring):
                        continue
                    j = ring[dpos]
                    jag = self.agents[j]
                    _, _, jtg, jbg = jag.edge_rects()
                    dst_rect = jbg if is_top else jtg
                    if j == n:  # single wrapped node: both edges local
                        ag.copy_local_ghost(dst_i, src_rect, dst_rect)
                        continue
                    arrival = self._send(n, j, nbytes, finish[n], "ghost")
                    done[j] = max(done[j], arrival)
                    jag.write_ghost(
                        dst_i, dst_rect, ag.edge_data(dst_i, src_rect)
                    )
                    g_lo, g_hi = (
                        (ag.lo, ag.lo + r) if is_top else (ag.hi - r, ag.hi)
                    )
                    ghost_records.append(
                        GhostRecord(j, g_lo, g_hi, tick + 1)
                    )
        if not self.wrap:
            # Global edges have no neighbor: their ghosts are empty
            # space, re-zeroed (the tick wrote stencil outputs there).
            for n, top in ((ring[0], True), (ring[-1], False)):
                ag = self.agents[n]
                _, _, tg, bg = ag.edge_rects()
                ag.zero_ghost(dst_i, tg if top else bg)

        # Phase D: barrier + liveness sweep.
        barrier = max(done.values()) if done else self._clock
        if fp is not None:
            for n in ring:
                if n in finish and fp.crashed(n, barrier):
                    t_c = fp.crash_time(n)
                    declared = self._declared_dead(n, t_c)
                    err = NodeFailure(
                        f"node {n} crashed during the exchange window at "
                        f"t={t_c:.6f}s (declared dead at t={declared:.6f}s)",
                        node=n,
                        time=declared,
                        cause="crash",
                    )
                    raise _Unreachable(
                        [err], [n], max(declared, barrier)
                    )
            fp.heartbeats_sent += len(ring)
        for n in ring:
            node = self.agents[n].node
            node.host_advance(max(0.0, barrier - node.time))
        self._clock = max(self._clock, barrier)
        self.tick = tick + 1
        self.monitor.record_ghosts(ghost_records)
        self._run_ghost_checks()
        if fp is not None and self.tick % fp.checkpoint_interval == 0:
            self._checkpoint(self.tick, from_host=False)

    def run(self, ticks: int) -> float:
        """Run ``ticks`` steps; returns the cluster time afterwards."""
        for _ in range(ticks):
            self.step()
        return self.time

    @property
    def time(self) -> float:
        live = self.monitor.live_nodes()
        times = [self.agents[n].node.time for n in live]
        return max([self._clock, *times])

    # -- checkpoints ----------------------------------------------------------
    def _checkpoint_now(self) -> None:
        self._checkpoint(self.tick, from_host=True)

    def _checkpoint(self, tick: int, from_host: bool) -> None:
        """Coordinated slab checkpoint at ``tick``: every slab owner
        snapshots its interior (device gather unless the host image is
        already the freshest copy) and ships replicas to its ring
        successors; the monitor records the holder map atomically at the
        end, so a failure mid-checkpoint leaves the previous checkpoint
        intact and consistent."""
        fp = self.faults
        which = tick % 2
        cid = self._ckpt_seq + 1
        ring = self.monitor.order()
        deg = fp.replicas_for(len(ring))
        regions: list[tuple[int, int, tuple[int, ...]]] = []
        t_done = self._clock
        for pos, n in enumerate(ring):
            ag = self.agents[n]
            if from_host:
                ag.snapshot_from_host(cid, which)
                t_local = max(self._clock, ag.node.time)
            else:
                t_local = ag.checkpoint_local(cid, which)
            lo, hi, data = ag.local_ckpts[cid]
            holders = [n]
            slab_nbytes = (hi - lo) * self.cols * 4
            for k in range(1, deg + 1):
                peer = ring[(pos + k) % len(ring)]
                if peer == n:
                    break
                arrival = self._send(
                    n, peer, slab_nbytes, t_local, "checkpoint"
                )
                self.agents[peer].store_peer_ckpt(n, cid, lo, hi, data)
                holders.append(peer)
                t_done = max(t_done, arrival)
            t_done = max(t_done, t_local)
            regions.append((lo, hi, tuple(holders)))
        # Commit atomically: a failure anywhere above leaves the previous
        # checkpoint's records and stores untouched (uncommitted cid
        # entries in agent stores are pruned at the next commit).
        self.monitor.record_checkpoint(tick, cid, regions)
        self._ckpt_seq = cid
        for n in self.monitor.live_nodes():
            self.agents[n].prune_ckpts(cid)
        fp.checkpoints_taken += 1
        for n in ring:  # the checkpoint is itself a barrier
            node = self.agents[n].node
            node.host_advance(max(0.0, t_done - node.time))
        self._clock = max(self._clock, t_done)

    # -- recovery -------------------------------------------------------------
    def _recover(self, u: _Unreachable) -> None:
        """The recovery ladder (module docstring steps 2-5)."""
        fp = self.faults
        now = max(self._clock, u.at)
        pre_live = self.monitor.live_nodes()
        old_slabs = dict(self.monitor.slabs)
        self.events.extend(u.errors)

        # Partitions must leave the master a strict majority; otherwise
        # fencing would resolve a split-brain by fiat.
        if any(isinstance(e, PartitionError) for e in u.errors):
            survivors = [n for n in pre_live if n not in u.nodes]
            if 2 * len(survivors) <= len(pre_live):
                raise ClusterRecoveryError(
                    f"partition left the master with {len(survivors)} of "
                    f"{len(pre_live)} nodes: no strict majority",
                    reason="no-quorum",
                    time=now,
                ) from u.errors[0]

        causes: dict[int, str] = {}
        for e in u.errors:
            if isinstance(e, NodeFailure):
                causes[e.node] = e.cause
        for n in dict.fromkeys(u.nodes):
            ag = self.agents[n]
            cause = causes.get(n)
            if cause in ("crash", "agent-error"):
                self.monitor.mark_dead(n)
                t_c = fp.crash_time(n) if cause == "crash" else None
                ag.crash(now if t_c is None else t_c)
            else:  # partition / faulty link: intact but excluded forever
                self.monitor.mark_fenced(n)
                ag.fence()
            fp.nodes_lost += 1
        fp.recoveries += 1
        self.recovery_log.append(
            {
                "at": now,
                "tick": self.tick,
                "lost": list(dict.fromkeys(u.nodes)),
                "errors": [type(e).__name__ for e in u.errors],
            }
        )

        live = self.monitor.live_nodes()
        if not live:
            raise ClusterRecoveryError(
                "no surviving nodes",
                reason="no-survivors",
                time=now,
            ) from u.errors[0]
        C = self.monitor.checkpoint_tick
        cid = self.monitor.checkpoint_id
        if C < 0:  # a node died before its slab's first replica shipped
            raise ClusterRecoveryError(
                "node lost before the first coordinated checkpoint",
                reason="checkpoint-lost",
                time=now,
            ) from u.errors[0]
        gap = self.monitor.coverage_gap(0, self.rows)
        if gap is not None:
            raise ClusterRecoveryError(
                f"rows [{gap[0]}, {gap[1]}) have no surviving checkpoint "
                "replica",
                reason="checkpoint-lost",
                time=now,
            ) from u.errors[0]

        # Save surviving neighbours' ghost copies of the dead nodes' edge
        # rows (stamped with the last completed tick T) for the
        # post-replay integrity cross-check.
        T = self.tick
        which_T = T % 2
        for n in dict.fromkeys(u.nodes):
            rng = old_slabs.get(n)
            if rng is None:
                continue
            for g in self.monitor.ghost_replicas_of(*rng):
                if g.tick != T:
                    continue
                data = self.agents[g.holder].ghost_rows(
                    which_T, g.lo, g.hi
                )
                self._ghost_checks.append((T, g.lo, g.hi, data))

        # Re-slab across survivors and rebuild from checkpoint replicas,
        # fetching each new slab's rows peer-to-peer over the fabric.
        new_slabs = self.monitor.assign(live, min_rows=self.radius + 1)
        which = C % 2
        t_done = now
        r = self.radius
        for n in self.monitor.order():
            lo, hi = new_slabs[n]
            ext = hi - lo + 2 * r
            region = (
                np.zeros((ext, self.cols), np.int32)
                if self.functional
                else None
            )
            for a, b in ((lo - r, lo), (lo, hi), (hi, hi + r)):
                t_done = max(
                    t_done,
                    self._fetch_rows(n, a, b, lo, region, cid, now),
                )
            try:
                self.agents[n].rebuild(lo, hi, region, which)
            except UnrecoverableError as e:
                err = NodeFailure(
                    f"node {n} cannot rebuild: {e}",
                    node=n,
                    time=t_done,
                    cause="agent-error",
                )
                raise _Unreachable([err], [n], t_done) from e

        for n in live:
            node = self.agents[n].node
            node.host_advance(max(0.0, t_done - node.time))
        self._clock = max(self._clock, t_done)
        # Roll back to the checkpoint; the drive loop replays from here.
        self.tick = C
        # Fresh coordinated checkpoint over the new decomposition, so a
        # subsequent failure (down to a single survivor) recovers again.
        self._checkpoint(C, from_host=True)
        self.recovery_log[-1]["resumed_from_tick"] = C
        self.recovery_log[-1]["resumed_at"] = self._clock

    def _fetch_rows(
        self,
        n: int,
        v_lo: int,
        v_hi: int,
        slab_lo: int,
        region: np.ndarray | None,
        ckpt_cid: int,
        ready: float,
    ) -> float:
        """Fetch virtual board rows ``[v_lo, v_hi)`` of the checkpoint
        into node ``n``'s extended region (wrap-aware; rows outside a
        non-wrapping board stay zero). Returns the last arrival time."""
        t_done = ready
        r = self.radius
        # Maximal runs of consecutive in-range board rows (virtual rows
        # wrap modularly on a toroidal board, stay zero otherwise).
        runs: list[tuple[int, int, int]] = []  # (g_lo, g_hi, dest)
        v = v_lo
        while v < v_hi:
            if self.wrap:
                g = v % self.rows
                span = min(v_hi - v, self.rows - g)
                runs.append((g, g + span, v - slab_lo + r))
                v += span
            elif v < 0:
                v = min(0, v_hi)
            elif v >= self.rows:
                break
            else:
                g_hi = min(v_hi, self.rows)
                runs.append((v, g_hi, v - slab_lo + r))
                v = g_hi
        for g_lo, g_hi, dest0 in runs:
            for s_lo, s_hi, holders in self.monitor.checkpoint_holders(
                g_lo, g_hi
            ):
                if not holders:  # pragma: no cover - coverage pre-checked
                    raise ClusterRecoveryError(
                        f"rows [{s_lo}, {s_hi}) lost",
                        reason="checkpoint-lost",
                        time=ready,
                    )
                holder = n if n in holders else min(holders)
                if holder != n:
                    t_done = max(
                        t_done,
                        self._send(
                            holder,
                            n,
                            (s_hi - s_lo) * self.cols * 4,
                            ready,
                            "recover",
                        ),
                    )
                data = self.agents[holder].checkpoint_rows(
                    ckpt_cid, s_lo, s_hi
                )
                if region is not None and data is not None:
                    dest = dest0 + (s_lo - g_lo)
                    region[dest : dest + (s_hi - s_lo)] = data
        return t_done

    # -- ghost integrity cross-check ------------------------------------------
    def _run_ghost_checks(self) -> None:
        """When the replay re-reaches the failure tick, compare the
        recomputed rows against the ghost copies surviving neighbours
        held of the dead nodes' edges. The gathers run (and cost
        simulated time) in both modes; the comparison is functional."""
        due = [c for c in self._ghost_checks if c[0] == self.tick]
        if not due:
            return
        self._ghost_checks = [
            c for c in self._ghost_checks if c[0] > self.tick
        ]
        which = self.tick % 2
        for _, g_lo, g_hi, expected in due:
            for n in self.monitor.order():
                lo, hi = self.monitor.slabs[n]
                s_lo, s_hi = max(g_lo, lo), min(g_hi, hi)
                if s_lo >= s_hi:
                    continue
                ag = self.agents[n]
                ag.gather_rows(which, s_lo, s_hi)
                if expected is None or not self.functional:
                    continue
                got = ag.read_rows(which, s_lo, s_hi)
                want = expected[s_lo - g_lo : s_hi - g_lo]
                if not np.array_equal(got, want):
                    raise ClusterRecoveryError(
                        f"replayed rows [{s_lo}, {s_hi}) at tick "
                        f"{self.tick} diverge from the ghost replicas "
                        "surviving neighbours held of the failed node's "
                        "edges",
                        reason="ghost-mismatch",
                        time=self._clock,
                    )

    # -- results --------------------------------------------------------------
    def board(self) -> np.ndarray:
        """Gather and assemble the current global board (functional)."""
        if not self.functional:
            raise SchedulingError("board() requires functional mode")
        which = self.tick % 2
        out = np.zeros((self.rows, self.cols), np.int32)
        for n in self.monitor.order():
            lo, hi = self.monitor.slabs[n]
            ag = self.agents[n]
            ag.sched.gather(ag.slabs[which])
            out[lo:hi] = ag.slabs[which].host[
                self.radius : self.radius + (hi - lo)
            ]
        return out
