"""The cluster master: fault-tolerant bulk-synchronous drive loop
(DESIGN.md §15).

:class:`ClusterMaster` runs on the head node and owns everything *between*
the nodes: the slab decomposition (via the hierarchical
:class:`~repro.cluster.monitor.ClusterMonitor`), the per-tick command
dispatch to each :class:`~repro.cluster.agent.NodeAgent`, the ghost
exchange over the simulated fabric, heartbeat-based failure detection,
coordinated slab checkpoints, and the recovery ladder. Its drive loop is
deliberately simple::

    while tick < target:
        try:    attempt one bulk-synchronous tick
        except node unreachable: recover (fence, re-slab, roll back)

Everything runs in **simulated cluster time**: retries back off in
simulated seconds, heartbeat misses are counted against the simulated
send schedule, recovery transfers occupy the simulated fabric. With no
:class:`~repro.cluster.faults.ClusterFaultPlan` installed the master adds
*zero* overhead — no heartbeats, no checkpoints, no extra messages — and
the schedule is identical to the pre-fault-tolerance cluster layer
(asserted by the timing benchmarks).

Recovery (the tentpole protocol):

1. **Detect** — a node stops acking (heartbeat-miss math in
   :meth:`_declared_dead`), crashes mid-compute, lands on the wrong side
   of a partition past the retry budget, or escalates an intra-node
   :class:`~repro.errors.UnrecoverableError`.
2. **Fence** — the node is marked dead (crash: host memory poisoned) or
   fenced (partition: intact but excluded until repaired), and the typed
   error is appended to :attr:`events`.
3. **Check** — partitions need the master to keep a strict majority;
   every board row needs a surviving checkpoint replica
   (:meth:`ClusterMonitor.coverage_gap`). Otherwise
   :class:`~repro.errors.ClusterRecoveryError`.
4. **Re-slab** — survivors get a fresh near-even decomposition; each new
   slab's rows (interior plus ghosts) are fetched peer-to-peer from
   checkpoint holders over the fabric and rebuilt into fresh schedulers
   restricted to each node's surviving GPUs.
5. **Roll back & replay** — the cluster rewinds to the checkpoint tick
   and replays through the normal drive loop. Functional compute is
   deterministic and decomposition-independent, so the replayed board is
   **bit-identical** to the fault-free run.
6. **Cross-check** — edge rows the dead node had shipped into surviving
   neighbours' ghost regions are compared against the replayed rows once
   the replay re-reaches the failure tick (``"ghost-mismatch"`` if the
   recovered state diverges).

Elastic membership (when the fault plan schedules
:class:`~repro.cluster.faults.NodeRepair` events): a repaired node
announces itself, waits out a capped-exponential rejoin backoff, then
must answer clean heartbeats for ``probation_interval`` before the
master re-admits it as an idle spare — probationary nodes count toward
quorum and coverage only after admission. Re-admission triggers
anti-entropy re-replication (the committed checkpoint generation is
shipped to the rejoined node until every region is back at the
replication factor), and ``reslab_on_rejoin`` additionally re-runs the
decomposition over the enlarged survivor set through the same
rewind+replay ladder as recovery. A node exceeding ``max_flaps``
crash→repair cycles is permanently banned
(:class:`~repro.errors.NodeBannedError`). Every transition is recorded
as a :class:`MembershipEvent` in :attr:`ClusterMaster.membership_log`.
With no repair events planned, none of this machinery runs — the
schedule is identical, message for message, to the repair-free protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cluster.agent import NodeAgent
from repro.cluster.faults import ClusterFaultPlan
from repro.cluster.monitor import ClusterMonitor, GhostRecord
from repro.cluster.network import ClusterNetwork, NetworkCalibration
from repro.core import Kernel
from repro.errors import (
    ClusterRecoveryError,
    LinkError,
    NodeBannedError,
    NodeFailure,
    PartitionError,
    SchedulingError,
    UnrecoverableError,
)
from repro.hardware.specs import GPUSpec


@dataclass(frozen=True)
class MembershipEvent:
    """One membership transition, stamped with simulated cluster time —
    the cluster-level mirror of
    :class:`~repro.serving.autoscaler.ScalingEvent`.

    ``action`` is one of ``"dead"`` / ``"fence"`` (a node leaves the
    member set), ``"repair-announce"`` (a repaired node contacts the
    master), ``"probation-start"`` / ``"probation-fail"``, ``"re-admit"``
    (probation passed, node is an idle spare again), ``"re-replicate"``
    (anti-entropy shipped checkpoint regions to the rejoined node),
    ``"reslab"`` (the decomposition was re-run over the enlarged
    survivor set) or ``"ban"`` (flap damping made the exclusion
    permanent)."""

    time: float
    node: int
    action: str
    detail: str = ""


class _Unreachable(Exception):
    """Internal control flow: one or more nodes were declared lost during
    a tick attempt. Carries the typed public errors; never escapes
    :meth:`ClusterMaster.step`."""

    def __init__(
        self,
        errors: list[NodeFailure | LinkError],
        nodes: list[int],
        at: float,
    ):
        super().__init__("; ".join(str(e) for e in errors))
        self.errors = errors
        self.nodes = nodes
        self.at = at


class ClusterMaster:
    """Master/agent execution of a 2-D stencil across multi-GPU nodes.

    Args:
        spec: GPU model of every node (``node_specs`` overrides per node).
        num_nodes: Number of multi-GPU nodes.
        gpus_per_node: GPUs per node.
        board: Initial global board array, or ``(rows, cols)`` for
            timing-only runs.
        kernel: The per-tick stencil kernel.
        radius: Stencil radius (ghost depth).
        functional: Functional vs timing-only per-node simulation.
        network: Fabric calibration.
        wrap: Cyclic (toroidal) row boundary via ring exchange.
        faults: Optional :class:`ClusterFaultPlan`. When None the master
            runs the plain fault-intolerant schedule (no heartbeats, no
            checkpoints — zero overhead).
        node_specs: Optional per-node GPU spec overrides, e.g. a
            capacity-clamped spec to compose cluster faults with the
            memory-pressure ladder on one node.
    """

    #: Recoveries within one ``step()`` before the master gives up.
    MAX_RECOVERIES_PER_STEP = 16

    def __init__(
        self,
        spec: GPUSpec,
        num_nodes: int,
        gpus_per_node: int,
        board: np.ndarray | tuple[int, int],
        kernel: Kernel,
        radius: int = 1,
        functional: bool = True,
        network: NetworkCalibration | None = None,
        wrap: bool = False,
        faults: ClusterFaultPlan | None = None,
        node_specs: dict[int, GPUSpec] | None = None,
    ):
        if isinstance(board, tuple):
            rows, cols = board
            board_arr = None
            if functional:
                raise SchedulingError(
                    "functional mode requires an actual board"
                )
        else:
            board_arr = np.ascontiguousarray(board)
            rows, cols = board_arr.shape
        if rows % num_nodes != 0:
            raise SchedulingError(
                f"board rows {rows} not divisible by {num_nodes} nodes"
            )
        if rows // num_nodes <= radius:
            raise SchedulingError("slab thinner than the stencil radius")
        self.rows, self.cols = rows, cols
        self.radius = radius
        self.wrap = wrap
        self.num_nodes = num_nodes
        self.kernel = kernel
        self.functional = functional
        self.faults = faults
        self.network = ClusterNetwork(num_nodes, network)
        self.monitor = ClusterMonitor(rows, cols, radius, 4)
        #: Typed failure errors in detection order (observability).
        self.events: list[Exception] = []
        #: One dict per recovery, for reports and tests.
        self.recovery_log: list[dict] = []
        #: Membership audit log (elastic membership; see MembershipEvent).
        self.membership_log: list[MembershipEvent] = []
        #: node -> cluster time of its last (re-)admission: liveness
        #: checks only look at crashes *after* this, so a node that
        #: crashed, was repaired and re-admitted is not re-condemned for
        #: its old crash. -1.0 so a crash at t=0 is still after it.
        self._member_since: dict[int, float] = {
            i: -1.0 for i in range(num_nodes)
        }
        #: node -> crash→repair cycles seen (flap damping).
        self._flaps: dict[int, int] = {}
        #: node -> (announced_at, probation_start, probation_deadline).
        self._probation: dict[int, tuple[float, float, float]] = {}
        #: node -> consumed prefix of its normalized repair events.
        self._repair_idx: dict[int, int] = {}

        specs = node_specs or {}
        self.agents: dict[int, NodeAgent] = {}
        for i in range(num_nodes):
            plan = faults.node_plans.get(i) if faults is not None else None
            self.agents[i] = NodeAgent(
                i,
                specs.get(i, spec),
                gpus_per_node,
                cols,
                kernel,
                radius,
                functional,
                faults=plan,
            )
        self.monitor.node_monitors = {
            i: ag.sched.monitor for i, ag in self.agents.items()
        }
        slabs = self.monitor.assign(
            list(range(num_nodes)), min_rows=radius + 1
        )
        for i, (lo, hi) in slabs.items():
            region = (
                self._board_region(board_arr, lo, hi)
                if board_arr is not None
                else None
            )
            self.agents[i].build(lo, hi, region, which=0)

        self.tick = 0
        self._target = 0
        #: Master clock = the last barrier time.
        self._clock = 0.0
        #: Monotonic checkpoint id (agents' store key; see monitor).
        self._ckpt_seq = 0
        #: Pending ghost-replica integrity probes: (tick, lo, hi, data).
        self._ghost_checks: list[tuple[int, int, int, np.ndarray | None]] = []
        if faults is not None:
            # Tick-0 coordinated checkpoint: the initial board is known to
            # the master, so local snapshots are free (no device gather);
            # replica shipping occupies the fabric like any checkpoint.
            self._drive(self._checkpoint_now)

    # -- initial data ---------------------------------------------------------
    def _board_region(
        self, board: np.ndarray, lo: int, hi: int
    ) -> np.ndarray:
        """Extended slab content (ghosts included) for rows [lo, hi)."""
        r = self.radius
        region = np.zeros((hi - lo + 2 * r, self.cols), np.int32)
        region[r : r + (hi - lo)] = board[lo:hi]
        if self.wrap or lo - r >= 0:
            idx = np.arange(lo - r, lo)
            region[:r] = board[idx % self.rows if self.wrap else idx]
        if self.wrap or hi + r <= self.rows:
            idx = np.arange(hi, hi + r)
            region[r + (hi - lo) :] = board[
                idx % self.rows if self.wrap else idx
            ]
        return region

    # -- messaging ------------------------------------------------------------
    def _crash_since(self, node: int, t: float) -> float | None:
        """The crash that makes ``node`` lost to the cluster at time
        ``t``: the earliest crash after its last (re-)admission and at or
        before ``t``, or None. Deliberately *not* "is the node up at t" —
        a node that crashed and was repaired within one window still lost
        its memory, so any crash since admission is a loss until the
        membership protocol re-admits it."""
        return self.faults.crash_in(node, self._member_since[node], t)

    def _reach(self, node: int, t: float) -> float:
        """Deliver a control message (tick command / heartbeat) to
        ``node``, retrying through transient partitions. Control messages
        are metadata-sized and ride the fabric's control plane: delivery
        is free in simulated time, but *failed* delivery costs the ack
        timeout plus backoff per attempt. Returns the delivery time."""
        fp = self.faults
        if fp is None:
            return t
        t_try = t
        live = self.monitor.order()
        for attempt in range(1, fp.max_retries + 2):
            if self._crash_since(node, t_try) is None and (
                node in fp.master_group(live, t_try)
            ):
                return t_try
            if attempt > fp.max_retries:
                break
            fp.messages_retried += 1
            t_try += fp.ack_timeout + fp.backoff(attempt)
        t_c = self._crash_since(node, t_try)
        if t_c is not None:
            declared = self._declared_dead(node, t_c)
            err = NodeFailure(
                f"node {node} stopped answering heartbeats "
                f"(crashed at t={t_c:.6f}s, declared dead "
                f"at t={declared:.6f}s)",
                node=node,
                time=declared,
                cause="crash",
            )
            raise _Unreachable([err], [node], max(t_try, declared))
        isolated = tuple(
            n for n in live if n not in fp.master_group(live, t_try)
        )
        err = PartitionError(
            f"nodes {list(isolated)} unreachable past the retry budget: "
            f"fabric partition (fencing the minority at t={t_try:.6f}s)",
            isolated=isolated,
            src=-1,
            dst=node,
            time=t_try,
            attempts=fp.max_retries + 1,
        )
        raise _Unreachable([err], list(isolated), t_try)

    def _send(
        self, src: int, dst: int, nbytes: int, ready: float, what: str
    ) -> float:
        """One inter-node data message (ghost rows, checkpoint replica,
        recovery fetch) with loss retry. Returns the arrival time."""
        fp = self.faults
        if fp is None:
            return self.network.transfer(src, dst, nbytes, ready)
        t_try = ready
        for attempt in range(1, fp.max_retries + 2):
            t_c = self._crash_since(src, t_try)
            if t_c is not None:
                declared = self._declared_dead(src, t_c)
                err = NodeFailure(
                    f"node {src} crashed before sending {what} to {dst}",
                    node=src,
                    time=declared,
                    cause="crash",
                )
                raise _Unreachable([err], [src], max(t_try, declared))
            lost = (
                self._crash_since(dst, t_try) is not None
                or not fp.reachable(src, dst, t_try)
                or fp.link_fault_now(src, dst)
            )
            if not lost:
                return self.network.transfer(
                    src,
                    dst,
                    nbytes,
                    t_try,
                    factor=fp.slow_factor(src, dst, t_try),
                )
            if attempt > fp.max_retries:
                t_try += fp.ack_timeout
                break
            fp.messages_retried += 1
            t_try += fp.ack_timeout + fp.backoff(attempt)
        # Retry budget exhausted: classify.
        t_c = self._crash_since(dst, t_try)
        if t_c is not None:
            declared = self._declared_dead(dst, t_c)
            err = NodeFailure(
                f"node {dst} crashed; {what} from {src} undeliverable",
                node=dst,
                time=declared,
                cause="crash",
            )
            raise _Unreachable([err], [dst], max(t_try, declared))
        live = self.monitor.order()
        if not fp.reachable(src, dst, t_try):
            isolated = tuple(
                n for n in live if n not in fp.master_group(live, t_try)
            )
            err = PartitionError(
                f"{what} {src}->{dst} undeliverable: fabric partition "
                f"(fencing nodes {list(isolated)})",
                isolated=isolated,
                src=src,
                dst=dst,
                time=t_try,
                attempts=fp.max_retries + 1,
            )
            raise _Unreachable(
                [err], list(isolated) or [dst], t_try
            )
        # Persistently lossy link with both endpoints alive: fail-stop
        # semantics for the receiver — a link that stays bad past the
        # retry budget is indistinguishable from a dead NIC.
        err = LinkError(
            f"{what} {src}->{dst} lost {fp.max_retries + 1} times: "
            f"link/NIC declared faulty, fencing receiver {dst}",
            src=src,
            dst=dst,
            time=t_try,
            attempts=fp.max_retries + 1,
        )
        raise _Unreachable([err], [dst], t_try)

    def _declared_dead(self, node: int, t_crash: float) -> float:
        """Heartbeat-detection time for a node that fail-stopped at
        ``t_crash``: the first ``miss_threshold`` consecutive heartbeat
        sends after the crash each miss their ack; sends scheduled while
        the node's links are still draining queued transfers
        (:meth:`ClusterNetwork.busy_until`) are skipped rather than
        counted — a node finishing a checkpoint is busy, not dead."""
        fp = self.faults
        h = fp.heartbeat_interval
        t_send = (math.floor(t_crash / h) + 1) * h
        misses = 0
        last = t_send
        while misses < fp.miss_threshold:
            busy = self.network.busy_until(node)
            if busy > t_send:
                t_send = (math.floor(busy / h) + 1) * h
                continue
            misses += 1
            fp.heartbeats_missed += 1
            last = t_send
            t_send += h
        return last + fp.heartbeat_timeout

    # -- the drive loop -------------------------------------------------------
    def step(self) -> None:
        """Advance the cluster by one tick, recovering from any node
        losses encountered on the way (which may involve rolling back to
        the last coordinated checkpoint and replaying)."""
        self._target = self.tick + 1
        self._drive(self._attempt_tick)

    def _drive(self, attempt) -> None:
        """Run ``attempt`` until the target tick is reached, entering the
        recovery ladder on every declared node loss."""
        recoveries = 0
        pending: _Unreachable | None = None
        while True:
            try:
                if pending is not None:
                    u, pending = pending, None
                    # Recovery may itself lose a node (a survivor dies
                    # while serving checkpoint fetches): the nested
                    # _Unreachable lands back here and recovery restarts
                    # against the further-shrunk cluster.
                    self._recover(u)
                    attempt = self._attempt_tick
                else:
                    attempt()
            except _Unreachable as exc:
                recoveries += 1
                if recoveries > self.MAX_RECOVERIES_PER_STEP:
                    raise ClusterRecoveryError(
                        "recovery is thrashing: "
                        f"{recoveries} node losses within one step",
                        reason="thrashing",
                        time=exc.at,
                    ) from exc
                pending = exc
                continue
            if self.tick >= self._target:
                return

    def _attempt_tick(self) -> None:
        """One bulk-synchronous tick: dispatch, compute, exchange,
        barrier, bookkeeping. Raises ``_Unreachable`` on any node loss."""
        fp = self.faults
        if fp is not None and fp.has_repairs:
            self._membership_tick()
        tick = self.tick
        src_i, dst_i = tick % 2, (tick + 1) % 2
        ring = self.monitor.order()
        multi = len(ring) > 1 or self.wrap
        r = self.radius
        nbytes = r * self.cols * 4

        # Phase A: dispatch the tick command (reachability check; free on
        # delivery, but transient partitions delay a node's start).
        starts: dict[int, float] = {}
        if fp is not None:
            for n in ring:
                starts[n] = self._reach(n, self._clock)

        # Phase B: local compute + edge gather per node (own clocks).
        finish: dict[int, float] = {}
        lost: list[NodeFailure] = []
        for n in ring:
            ag = self.agents[n]
            if fp is not None:
                ag.node.host_advance(max(0.0, starts[n] - ag.node.time))
            try:
                t_f = ag.compute(src_i, dst_i, multi)
            except UnrecoverableError as e:
                err = NodeFailure(
                    f"node {n} reported intra-node recovery exhausted: {e}",
                    node=n,
                    time=ag.node.time,
                    cause="agent-error",
                )
                raise _Unreachable([err], [n], ag.node.time) from e
            t_c = self._crash_since(n, t_f) if fp is not None else None
            if t_c is not None:
                declared = self._declared_dead(n, t_c)
                lost.append(
                    NodeFailure(
                        f"node {n} crashed mid-compute at t={t_c:.6f}s "
                        f"(declared dead at t={declared:.6f}s)",
                        node=n,
                        time=declared,
                        cause="crash",
                    )
                )
            else:
                finish[n] = t_f
        if lost:
            raise _Unreachable(
                lost, [e.node for e in lost], max(e.time for e in lost)
            )

        # Phase C: ghost exchange over the fabric.
        ghost_records: list[GhostRecord] = []
        done = dict(finish)
        if multi:
            for pos, n in enumerate(ring):
                ag = self.agents[n]
                te, be, _, _ = ag.edge_rects()
                for dpos, src_rect, is_top in (
                    (pos - 1, te, True),  # my top edge -> upper
                    (pos + 1, be, False),  # neighbor's bottom ghost, &vv
                ):
                    if self.wrap:
                        dpos %= len(ring)
                    elif not 0 <= dpos < len(ring):
                        continue
                    j = ring[dpos]
                    jag = self.agents[j]
                    _, _, jtg, jbg = jag.edge_rects()
                    dst_rect = jbg if is_top else jtg
                    if j == n:  # single wrapped node: both edges local
                        ag.copy_local_ghost(dst_i, src_rect, dst_rect)
                        continue
                    arrival = self._send(n, j, nbytes, finish[n], "ghost")
                    done[j] = max(done[j], arrival)
                    jag.write_ghost(
                        dst_i, dst_rect, ag.edge_data(dst_i, src_rect)
                    )
                    g_lo, g_hi = (
                        (ag.lo, ag.lo + r) if is_top else (ag.hi - r, ag.hi)
                    )
                    ghost_records.append(
                        GhostRecord(j, g_lo, g_hi, tick + 1)
                    )
        if not self.wrap:
            # Global edges have no neighbor: their ghosts are empty
            # space, re-zeroed (the tick wrote stencil outputs there).
            for n, top in ((ring[0], True), (ring[-1], False)):
                ag = self.agents[n]
                _, _, tg, bg = ag.edge_rects()
                ag.zero_ghost(dst_i, tg if top else bg)

        # Phase D: barrier + liveness sweep.
        barrier = max(done.values()) if done else self._clock
        if fp is not None:
            for n in ring:
                t_c = (
                    self._crash_since(n, barrier) if n in finish else None
                )
                if t_c is not None:
                    declared = self._declared_dead(n, t_c)
                    err = NodeFailure(
                        f"node {n} crashed during the exchange window at "
                        f"t={t_c:.6f}s (declared dead at t={declared:.6f}s)",
                        node=n,
                        time=declared,
                        cause="crash",
                    )
                    raise _Unreachable(
                        [err], [n], max(declared, barrier)
                    )
            fp.heartbeats_sent += len(ring)
        for n in ring:
            node = self.agents[n].node
            node.host_advance(max(0.0, barrier - node.time))
        self._clock = max(self._clock, barrier)
        self.tick = tick + 1
        self.monitor.record_ghosts(ghost_records)
        self._run_ghost_checks()
        if fp is not None and self.tick % fp.checkpoint_interval == 0:
            self._checkpoint(self.tick, from_host=False)

    def run(self, ticks: int) -> float:
        """Run ``ticks`` steps; returns the cluster time afterwards."""
        for _ in range(ticks):
            self.step()
        return self.time

    @property
    def time(self) -> float:
        live = self.monitor.live_nodes()
        times = [self.agents[n].node.time for n in live]
        return max([self._clock, *times])

    # -- checkpoints ----------------------------------------------------------
    def _checkpoint_now(self) -> None:
        self._checkpoint(self.tick, from_host=True)

    def _checkpoint(self, tick: int, from_host: bool) -> None:
        """Coordinated slab checkpoint at ``tick``: every slab owner
        snapshots its interior (device gather unless the host image is
        already the freshest copy) and ships replicas to its ring
        successors; the monitor records the holder map atomically at the
        end, so a failure mid-checkpoint leaves the previous checkpoint
        intact and consistent."""
        fp = self.faults
        which = tick % 2
        cid = self._ckpt_seq + 1
        ring = self.monitor.order()
        deg = fp.replicas_for(len(ring))
        regions: list[tuple[int, int, tuple[int, ...]]] = []
        t_done = self._clock
        for pos, n in enumerate(ring):
            ag = self.agents[n]
            if from_host:
                ag.snapshot_from_host(cid, which)
                t_local = max(self._clock, ag.node.time)
            else:
                t_local = ag.checkpoint_local(cid, which)
            lo, hi, data = ag.local_ckpts[cid]
            holders = [n]
            slab_nbytes = (hi - lo) * self.cols * 4
            for k in range(1, deg + 1):
                peer = ring[(pos + k) % len(ring)]
                if peer == n:
                    break
                arrival = self._send(
                    n, peer, slab_nbytes, t_local, "checkpoint"
                )
                self.agents[peer].store_peer_ckpt(n, cid, lo, hi, data)
                holders.append(peer)
                t_done = max(t_done, arrival)
            t_done = max(t_done, t_local)
            regions.append((lo, hi, tuple(holders)))
        # Elastic membership: re-admitted spares own no slab but can
        # carry checkpoint replicas — top each region up toward deg+1
        # holders so the replication factor does not stay eroded while
        # the ring is short-handed.
        if fp.has_repairs:
            spares = [
                m
                for m in self.monitor.live_nodes()
                if m not in self.monitor.slabs
            ]
            if spares:
                deg_all = fp.replicas_for(len(self.monitor.live_nodes()))
                base = t_done
                topped: list[tuple[int, int, tuple[int, ...]]] = []
                for lo, hi, holders in regions:
                    hl = list(holders)
                    owner = hl[0]
                    _, _, data = self.agents[owner].local_ckpts[cid]
                    for m in spares:
                        if len(hl) > deg_all:
                            break
                        if m in hl:
                            continue
                        arrival = self._send(
                            owner,
                            m,
                            (hi - lo) * self.cols * 4,
                            base,
                            "checkpoint",
                        )
                        self.agents[m].store_peer_ckpt(
                            owner, cid, lo, hi, data
                        )
                        hl.append(m)
                        fp.replicas_shipped += 1
                        t_done = max(t_done, arrival)
                    topped.append((lo, hi, tuple(hl)))
                regions = topped
        # Commit atomically: a failure anywhere above leaves the previous
        # checkpoint's records and stores untouched (uncommitted cid
        # entries in agent stores are pruned at the next commit).
        self.monitor.record_checkpoint(tick, cid, regions)
        self._ckpt_seq = cid
        for n in self.monitor.live_nodes():
            self.agents[n].prune_ckpts(cid)
        fp.checkpoints_taken += 1
        sync = self.monitor.live_nodes() if fp.has_repairs else ring
        for n in sync:  # the checkpoint is itself a barrier
            node = self.agents[n].node
            node.host_advance(max(0.0, t_done - node.time))
        self._clock = max(self._clock, t_done)

    # -- elastic membership ---------------------------------------------------
    def _log_member(self, time: float, node: int, action: str, detail: str = "") -> None:
        self.membership_log.append(
            MembershipEvent(time=time, node=node, action=action, detail=detail)
        )

    def membership_stats(self) -> dict:
        """Per-action counts over the membership audit log, plus the
        current status map — the observability surface mirrored on
        :class:`~repro.cluster.stencil.ClusterStencil` and reported by
        ``repro.bench --cluster``."""
        counts: dict[str, int] = {}
        for ev in self.membership_log:
            counts[ev.action] = counts.get(ev.action, 0) + 1
        return {
            "events": len(self.membership_log),
            "actions": counts,
            "status": dict(self.monitor.status),
        }

    def _membership_tick(self) -> None:
        """Drive the membership state machine up to the master clock:
        sweep crashed spares, process due repair announcements, and
        resolve expired probation windows. Only called when the fault
        plan schedules repair events — with none, the master's schedule
        is untouched (the zero-overhead invariant)."""
        now = self._clock
        self._sweep_spares(now)
        progressed = True
        while progressed:
            # A failed probation can unblock a queued repair event (the
            # node crashed and was repaired again mid-probation), and an
            # announcement whose backoff+probation already expired
            # resolves in the same pass — iterate to a fixed point.
            progressed = self._check_probations(now)
            progressed = self._check_repairs(now) or progressed

    def _sweep_spares(self, now: float) -> None:
        """Failure detection for idle spares: they are not in the ring,
        so the per-tick barrier sweep never sees them — check their
        heartbeat silence here. Losing a spare needs no rollback (it owns
        no slab); it just leaves the member set again."""
        fp = self.faults
        for n in sorted(self.monitor.status):
            if self.monitor.status[n] != "idle" or n in self.monitor.slabs:
                continue
            t_c = self._crash_since(n, now)
            if t_c is None:
                continue
            declared = self._declared_dead(n, t_c)
            if declared > now:
                continue  # silence not yet long enough to declare
            self.monitor.mark_dead(n)
            self.agents[n].crash(t_c)
            fp.nodes_lost += 1
            err = NodeFailure(
                f"spare node {n} crashed at t={t_c:.6f}s (declared dead "
                f"at t={declared:.6f}s)",
                node=n,
                time=declared,
                cause="crash",
            )
            self.events.append(err)
            self._log_member(declared, n, "dead", "idle spare lost")

    def _check_repairs(self, now: float) -> bool:
        """Process repair announcements due by ``now``; returns whether
        any membership state changed."""
        fp = self.faults
        changed = False
        for n in sorted(self.agents):
            reps = fp.repairs_of(n)
            i = self._repair_idx.get(n, 0)
            while i < len(reps) and reps[i] <= now:
                status = self.monitor.status.get(n)
                if status in ("dead", "fenced"):
                    self._announce(n, reps[i], now)
                    changed = True
                    i += 1
                elif status == "probation":
                    # The node crashed and was repaired again while on
                    # probation; the crash fails the current window
                    # first, then this repair re-announces.
                    break
                else:
                    # Already a member (stale repair) or banned: consume.
                    if status == "banned":
                        self._log_member(
                            reps[i], n, "repair-announce", "ignored: banned"
                        )
                    i += 1
            self._repair_idx[n] = i
        return changed

    def _announce(self, node: int, t_repair: float, now: float) -> None:
        """A repaired node contacted the master: count the flap, ban a
        repeat offender, otherwise schedule its probation window after
        the rejoin backoff."""
        fp = self.faults
        fp.nodes_repaired += 1
        self._flaps[node] = self._flaps.get(node, 0) + 1
        flaps = self._flaps[node]
        self._log_member(
            t_repair, node, "repair-announce", f"flap {flaps}"
        )
        if flaps > fp.max_flaps:
            self.monitor.mark_banned(node)
            fp.nodes_banned += 1
            t_ban = max(now, t_repair)
            err = NodeBannedError(
                f"node {node} exceeded max_flaps={fp.max_flaps} "
                f"crash→repair cycles: permanently banned at "
                f"t={t_ban:.6f}s",
                node=node,
                time=t_ban,
                flaps=flaps,
            )
            self.events.append(err)
            self._log_member(
                t_ban, node, "ban",
                f"{flaps} flaps > max_flaps={fp.max_flaps}",
            )
            return
        start = max(now, t_repair) + fp.rejoin_backoff(flaps)
        deadline = start + fp.probation_interval
        self._probation[node] = (t_repair, start, deadline)
        self.monitor.mark_probation(node)
        self._log_member(
            start, node, "probation-start",
            f"clean heartbeats until t={deadline:.6f}s",
        )

    def _check_probations(self, now: float) -> bool:
        """Resolve probation windows that expired by ``now``; returns
        whether any membership state changed."""
        fp = self.faults
        changed = False
        for n in sorted(self._probation):
            announced, start, deadline = self._probation[n]
            if deadline > now:
                continue
            del self._probation[n]
            changed = True
            verdict = self._probation_verdict(n, announced, start, deadline)
            if verdict is None:
                self._admit(n, max(now, deadline))
                continue
            cause, detail = verdict
            fp.probations_failed += 1
            if cause == "crash":
                # Back to dead; the node rejoins only via its *next*
                # repair event (picked up by _check_repairs).
                self.monitor.mark_dead(n)
            else:
                self.monitor.mark_fenced(n)
            self._log_member(deadline, n, "probation-fail", detail)
        return changed

    def _probation_verdict(
        self, node: int, announced: float, start: float, deadline: float
    ) -> tuple[str, str] | None:
        """Judge a completed probation window: None for a clean pass,
        else ``(cause, detail)``. The node must not have crashed since
        the repair that announced it, and must answer every heartbeat
        probe in ``[start, deadline)``."""
        fp = self.faults
        t_c = fp.crash_in(node, announced, deadline)
        if t_c is None and fp.crashed(node, deadline):
            # Crashed before the window even opened and never came back.
            t_c = fp.crash_time(node, deadline)
        if t_c is not None:
            return ("crash", f"crashed at t={t_c:.6f}s during probation")
        peers = self.monitor.live_nodes()
        h = fp.heartbeat_interval
        t = start
        while t < deadline:
            fp.heartbeats_sent += 1
            if node not in fp.master_group(peers + [node], t):
                fp.heartbeats_missed += 1
                return (
                    "unreachable",
                    f"probe unanswered at t={t:.6f}s (partitioned)",
                )
            t += h
        return None

    def _admit(self, node: int, t: float) -> None:
        """Probation passed: reboot the agent, re-admit the node as an
        idle spare, and run the anti-entropy re-replication pass (plus
        the optional re-slab)."""
        fp = self.faults
        ag = self.agents[node]
        ag.revive(t)
        self.monitor.mark_admitted(node)
        self.monitor.node_monitors[node] = ag.sched.monitor
        self._member_since[node] = t
        fp.nodes_readmitted += 1
        self._log_member(
            t, node, "re-admit", "idle spare after clean probation"
        )
        t_done = self._re_replicate(node, t)
        if fp.reslab_on_rejoin:
            fp.reslabs += 1
            self._log_member(
                t_done, node, "reslab",
                "re-running the decomposition over the enlarged survivor set",
            )
            self._rebuild_from_checkpoint(t_done)

    def _re_replicate(self, node: int, t: float) -> float:
        """Anti-entropy: ship every under-replicated region of the
        committed checkpoint generation to the rejoined node until each
        is back at the replication factor (owner + ``deg`` peers).
        The degree is computed over the *member* count — the rejoined
        spare raises it back toward the configured factor that a
        short-handed ring could not reach. Treated as a barrier — the
        spare and its sources sync at the last arrival. Returns that
        time."""
        fp = self.faults
        deg = fp.replicas_for(len(self.monitor.live_nodes()))
        t_done = t
        shipped = 0
        for rec in list(self.monitor.checkpoints):
            live_holders = [
                h
                for h in rec.holders
                if self.monitor.status.get(h) in ("live", "idle")
            ]
            if (
                node in live_holders
                or len(live_holders) > deg
                or not live_holders
            ):
                continue
            src = min(live_holders)
            arrival = self._send(
                src,
                node,
                (rec.hi - rec.lo) * self.cols * 4,
                t,
                "re-replicate",
            )
            data = self.agents[src].checkpoint_rows(rec.cid, rec.lo, rec.hi)
            self.agents[node].store_peer_ckpt(
                rec.holders[0], rec.cid, rec.lo, rec.hi, data
            )
            self.monitor.add_checkpoint_holder(rec.lo, rec.hi, node)
            fp.replicas_shipped += 1
            shipped += 1
            t_done = max(t_done, arrival)
        for m in self.monitor.live_nodes():
            sim = self.agents[m].node
            sim.host_advance(max(0.0, t_done - sim.time))
        self._clock = max(self._clock, t_done)
        if shipped:
            self._log_member(
                t_done, node, "re-replicate",
                f"{shipped} checkpoint region(s)",
            )
        return t_done

    # -- recovery -------------------------------------------------------------
    def _recover(self, u: _Unreachable) -> None:
        """The recovery ladder (module docstring steps 2-5)."""
        fp = self.faults
        now = max(self._clock, u.at)
        pre_live = self.monitor.live_nodes()
        old_slabs = dict(self.monitor.slabs)
        self.events.extend(u.errors)

        # Partitions must leave the master a strict majority; otherwise
        # fencing would resolve a split-brain by fiat.
        if any(isinstance(e, PartitionError) for e in u.errors):
            survivors = [n for n in pre_live if n not in u.nodes]
            if 2 * len(survivors) <= len(pre_live):
                raise ClusterRecoveryError(
                    f"partition left the master with {len(survivors)} of "
                    f"{len(pre_live)} nodes: no strict majority",
                    reason="no-quorum",
                    time=now,
                ) from u.errors[0]

        causes: dict[int, str] = {}
        for e in u.errors:
            if isinstance(e, NodeFailure):
                causes[e.node] = e.cause
        for n in dict.fromkeys(u.nodes):
            ag = self.agents[n]
            cause = causes.get(n)
            if cause in ("crash", "agent-error"):
                self.monitor.mark_dead(n)
                t_c = (
                    self._crash_since(n, now) if cause == "crash" else None
                )
                ag.crash(now if t_c is None else t_c)
                self._log_member(now, n, "dead", f"cause={cause}")
            else:  # partition / faulty link: intact but excluded
                self.monitor.mark_fenced(n)
                ag.fence()
                self._log_member(now, n, "fence", f"cause={cause}")
            fp.nodes_lost += 1
        fp.recoveries += 1
        self.recovery_log.append(
            {
                "at": now,
                "tick": self.tick,
                "lost": list(dict.fromkeys(u.nodes)),
                "errors": [type(e).__name__ for e in u.errors],
            }
        )

        live = self.monitor.live_nodes()
        if not live:
            raise ClusterRecoveryError(
                "no surviving nodes",
                reason="no-survivors",
                time=now,
            ) from u.errors[0]
        C = self.monitor.checkpoint_tick
        cid = self.monitor.checkpoint_id
        if C < 0:  # a node died before its slab's first replica shipped
            raise ClusterRecoveryError(
                "node lost before the first coordinated checkpoint",
                reason="checkpoint-lost",
                time=now,
            ) from u.errors[0]
        gap = self.monitor.coverage_gap(0, self.rows)
        if gap is not None:
            raise ClusterRecoveryError(
                f"rows [{gap[0]}, {gap[1]}) have no surviving checkpoint "
                "replica",
                reason="checkpoint-lost",
                time=now,
            ) from u.errors[0]

        # Save surviving neighbours' ghost copies of the dead nodes' edge
        # rows (stamped with the last completed tick T) for the
        # post-replay integrity cross-check.
        T = self.tick
        which_T = T % 2
        for n in dict.fromkeys(u.nodes):
            rng = old_slabs.get(n)
            if rng is None:
                continue
            for g in self.monitor.ghost_replicas_of(*rng):
                if g.tick != T:
                    continue
                data = self.agents[g.holder].ghost_rows(
                    which_T, g.lo, g.hi
                )
                self._ghost_checks.append((T, g.lo, g.hi, data))

        # Re-slab across survivors and rebuild from checkpoint replicas,
        # fetching each new slab's rows peer-to-peer over the fabric.
        self._rebuild_from_checkpoint(now)
        self.recovery_log[-1]["resumed_from_tick"] = self.tick
        self.recovery_log[-1]["resumed_at"] = self._clock

    def _rebuild_from_checkpoint(self, now: float) -> None:
        """Re-slab across the current member set (recovery steps 4-5,
        also the ``reslab_on_rejoin`` path): fresh near-even
        decomposition, each new slab's rows (interior plus ghosts)
        fetched peer-to-peer from checkpoint holders and rebuilt, then
        roll back to the checkpoint tick and take a fresh coordinated
        checkpoint over the new decomposition — the drive loop replays
        from there, bit-identically."""
        live = self.monitor.live_nodes()
        C = self.monitor.checkpoint_tick
        cid = self.monitor.checkpoint_id
        new_slabs = self.monitor.assign(live, min_rows=self.radius + 1)
        which = C % 2
        t_done = now
        r = self.radius
        for n in self.monitor.order():
            lo, hi = new_slabs[n]
            ext = hi - lo + 2 * r
            region = (
                np.zeros((ext, self.cols), np.int32)
                if self.functional
                else None
            )
            for a, b in ((lo - r, lo), (lo, hi), (hi, hi + r)):
                t_done = max(
                    t_done,
                    self._fetch_rows(n, a, b, lo, region, cid, now),
                )
            try:
                self.agents[n].rebuild(lo, hi, region, which)
            except UnrecoverableError as e:
                err = NodeFailure(
                    f"node {n} cannot rebuild: {e}",
                    node=n,
                    time=t_done,
                    cause="agent-error",
                )
                raise _Unreachable([err], [n], t_done) from e
            self.monitor.node_monitors[n] = self.agents[n].sched.monitor

        for n in live:
            node = self.agents[n].node
            node.host_advance(max(0.0, t_done - node.time))
        self._clock = max(self._clock, t_done)
        # Roll back to the checkpoint; the drive loop replays from here.
        self.tick = C
        # Fresh coordinated checkpoint over the new decomposition, so a
        # subsequent failure (down to a single survivor) recovers again.
        self._checkpoint(C, from_host=True)

    def _fetch_rows(
        self,
        n: int,
        v_lo: int,
        v_hi: int,
        slab_lo: int,
        region: np.ndarray | None,
        ckpt_cid: int,
        ready: float,
    ) -> float:
        """Fetch virtual board rows ``[v_lo, v_hi)`` of the checkpoint
        into node ``n``'s extended region (wrap-aware; rows outside a
        non-wrapping board stay zero). Returns the last arrival time."""
        t_done = ready
        r = self.radius
        # Maximal runs of consecutive in-range board rows (virtual rows
        # wrap modularly on a toroidal board, stay zero otherwise).
        runs: list[tuple[int, int, int]] = []  # (g_lo, g_hi, dest)
        v = v_lo
        while v < v_hi:
            if self.wrap:
                g = v % self.rows
                span = min(v_hi - v, self.rows - g)
                runs.append((g, g + span, v - slab_lo + r))
                v += span
            elif v < 0:
                v = min(0, v_hi)
            elif v >= self.rows:
                break
            else:
                g_hi = min(v_hi, self.rows)
                runs.append((v, g_hi, v - slab_lo + r))
                v = g_hi
        for g_lo, g_hi, dest0 in runs:
            for s_lo, s_hi, holders in self.monitor.checkpoint_holders(
                g_lo, g_hi
            ):
                if not holders:  # pragma: no cover - coverage pre-checked
                    raise ClusterRecoveryError(
                        f"rows [{s_lo}, {s_hi}) lost",
                        reason="checkpoint-lost",
                        time=ready,
                    )
                holder = n if n in holders else min(holders)
                if holder != n:
                    t_done = max(
                        t_done,
                        self._send(
                            holder,
                            n,
                            (s_hi - s_lo) * self.cols * 4,
                            ready,
                            "recover",
                        ),
                    )
                data = self.agents[holder].checkpoint_rows(
                    ckpt_cid, s_lo, s_hi
                )
                if region is not None and data is not None:
                    dest = dest0 + (s_lo - g_lo)
                    region[dest : dest + (s_hi - s_lo)] = data
        return t_done

    # -- ghost integrity cross-check ------------------------------------------
    def _run_ghost_checks(self) -> None:
        """When the replay re-reaches the failure tick, compare the
        recomputed rows against the ghost copies surviving neighbours
        held of the dead nodes' edges. The gathers run (and cost
        simulated time) in both modes; the comparison is functional."""
        due = [c for c in self._ghost_checks if c[0] == self.tick]
        if not due:
            return
        self._ghost_checks = [
            c for c in self._ghost_checks if c[0] > self.tick
        ]
        which = self.tick % 2
        for _, g_lo, g_hi, expected in due:
            for n in self.monitor.order():
                lo, hi = self.monitor.slabs[n]
                s_lo, s_hi = max(g_lo, lo), min(g_hi, hi)
                if s_lo >= s_hi:
                    continue
                ag = self.agents[n]
                ag.gather_rows(which, s_lo, s_hi)
                if expected is None or not self.functional:
                    continue
                got = ag.read_rows(which, s_lo, s_hi)
                want = expected[s_lo - g_lo : s_hi - g_lo]
                if not np.array_equal(got, want):
                    raise ClusterRecoveryError(
                        f"replayed rows [{s_lo}, {s_hi}) at tick "
                        f"{self.tick} diverge from the ghost replicas "
                        "surviving neighbours held of the failed node's "
                        "edges",
                        reason="ghost-mismatch",
                        time=self._clock,
                    )

    # -- results --------------------------------------------------------------
    def board(self) -> np.ndarray:
        """Gather and assemble the current global board (functional)."""
        if not self.functional:
            raise SchedulingError("board() requires functional mode")
        which = self.tick % 2
        out = np.zeros((self.rows, self.cols), np.int32)
        for n in self.monitor.order():
            lo, hi = self.monitor.slabs[n]
            ag = self.agents[n]
            ag.sched.gather(ag.slabs[which])
            out[lo:hi] = ag.slabs[which].host[
                self.radius : self.radius + (hi - lo)
            ]
        return out
