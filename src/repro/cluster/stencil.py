"""Distributed stencil execution across multi-GPU nodes (paper §8).

The paper's closing direction: extending the MAPS-Multi paradigm to
clusters, where *"communication latency is orders of magnitude higher
than within a multi-GPU node"*. This module is the user-facing facade of
that extension for the Window → Structured Injective family (the Game of
Life and friends):

* the global board is split into row **slabs**, one per node; each slab
  is stored with ``radius`` ghost rows on either side;
* within a node, the unmodified MAPS-Multi scheduler partitions the slab
  across the node's GPUs exactly as before (patterns unchanged);
* between ticks, each node gathers only its edge rows
  (``Scheduler.gather_region``), ships them over the simulated fabric to
  its neighbors' ghost rows, and invalidates the device copies of the
  ghost region (``mark_host_region_dirty``) so the framework re-uploads
  them.

Execution is delegated to the master/agent subsystem (DESIGN.md §15):
:class:`~repro.cluster.master.ClusterMaster` drives one
:class:`~repro.cluster.agent.NodeAgent` per node through the simulated
fabric, and — when a :class:`~repro.cluster.faults.ClusterFaultPlan` is
installed — detects node crashes, link faults and partitions via
heartbeats, checkpoints slabs to peer nodes, and recovers by re-slabbing
the board across survivors, with results bit-identical to the fault-free
run. Without a fault plan the schedule (and simulated time) is identical
to the original fault-intolerant cluster layer.
"""

from __future__ import annotations


import numpy as np

from repro.cluster.faults import ClusterFaultPlan
from repro.cluster.master import ClusterMaster
from repro.cluster.network import NetworkCalibration
from repro.core import Kernel
from repro.hardware.specs import GPUSpec


class ClusterStencil:
    """A 2-D stencil (Window2D → StructuredInjective) on a cluster.

    Args:
        spec: GPU model of every node (homogeneous cluster unless
            ``node_specs`` overrides individual nodes).
        num_nodes: Number of multi-GPU nodes.
        gpus_per_node: GPUs per node.
        board: Initial global board (rows divisible by ``num_nodes``),
            or a ``(rows, cols)`` tuple for timing-only runs.
        kernel: The per-tick kernel (same object the single-node
            framework runs).
        radius: Stencil radius (ghost depth).
        functional: Functional vs timing-only per-node simulation.
        network: Fabric calibration.
        wrap: Cyclic (toroidal) row boundary via ring exchange.
        faults: Optional cluster fault plan (crashes, link faults,
            partitions, slow links) — enables heartbeats, checkpointing
            and recovery.
        node_specs: Optional per-node GPU spec overrides.

    The global boundary condition is ZERO (the slab decomposition makes
    global WRAP a cyclic exchange — supported by passing ``wrap=True``).
    """

    def __init__(
        self,
        spec: GPUSpec,
        num_nodes: int,
        gpus_per_node: int,
        board: np.ndarray | tuple[int, int],
        kernel: Kernel,
        radius: int = 1,
        functional: bool = True,
        network: NetworkCalibration | None = None,
        wrap: bool = False,
        faults: ClusterFaultPlan | None = None,
        node_specs: dict[int, GPUSpec] | None = None,
    ):
        self.master = ClusterMaster(
            spec,
            num_nodes,
            gpus_per_node,
            board,
            kernel,
            radius=radius,
            functional=functional,
            network=network,
            wrap=wrap,
            faults=faults,
            node_specs=node_specs,
        )
        self.rows = self.master.rows
        self.cols = self.master.cols
        self.radius = radius
        self.wrap = wrap
        self.num_nodes = num_nodes
        self.slab_rows = self.rows // num_nodes
        self.kernel = kernel
        self.functional = functional
        self.faults = faults

    # -- delegation -----------------------------------------------------------
    @property
    def network(self):
        return self.master.network

    @property
    def monitor(self):
        return self.master.monitor

    @property
    def agents(self):
        return self.master.agents

    @property
    def nodes(self):
        """Per-node simulators, in node-id order (compat accessor)."""
        return [
            self.master.agents[i].node for i in sorted(self.master.agents)
        ]

    @property
    def scheds(self):
        """Per-node schedulers, in node-id order (compat accessor)."""
        return [
            self.master.agents[i].sched for i in sorted(self.master.agents)
        ]

    @property
    def events(self):
        """Typed failure errors the master detected, in order."""
        return self.master.events

    @property
    def recovery_log(self):
        return self.master.recovery_log

    @property
    def membership_log(self):
        """Elastic-membership audit trail (MembershipEvent records)."""
        return self.master.membership_log

    def membership_stats(self):
        """Per-action counts over the membership log plus node statuses."""
        return self.master.membership_stats()

    # -- execution ------------------------------------------------------------
    def step(self) -> None:
        """One tick on every node plus the inter-node ghost exchange
        (recovering from any injected cluster faults on the way)."""
        self.master.step()

    def run(self, ticks: int) -> float:
        """Run ``ticks`` steps; returns the cluster time afterwards."""
        return self.master.run(ticks)

    @property
    def time(self) -> float:
        return self.master.time

    # -- results --------------------------------------------------------------
    def board(self) -> np.ndarray:
        """Gather and assemble the current global board (functional)."""
        return self.master.board()
