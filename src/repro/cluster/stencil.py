"""Distributed stencil execution across multi-GPU nodes (paper §8).

The paper's closing direction: extending the MAPS-Multi paradigm to
clusters, where *"communication latency is orders of magnitude higher
than within a multi-GPU node"*. This module implements that extension
for the Window → Structured Injective family (the Game of Life and
friends):

* the global board is split into row **slabs**, one per node; each slab
  is stored with ``radius`` ghost rows on either side;
* within a node, the unmodified MAPS-Multi scheduler partitions the slab
  across the node's GPUs exactly as before (patterns unchanged);
* between ticks, each node gathers only its edge rows
  (``Scheduler.gather_region``), ships them over the simulated fabric to
  its neighbors' ghost rows, and invalidates the device copies of the
  ghost region (``mark_host_region_dirty``) so the framework re-uploads
  them — the cluster layer is ~200 lines because all the hard problems
  (per-GPU partitioning, halo inference, consistency) stay inside the
  per-node framework.

Each node's simulator keeps its own clock; the exchange phase
synchronizes them (a bulk-synchronous step), with message timing from
:class:`~repro.cluster.network.ClusterNetwork`.
"""

from __future__ import annotations


import numpy as np

from repro.cluster.network import ClusterNetwork, NetworkCalibration
from repro.core import Kernel, Matrix, Scheduler
from repro.core.datum import Datum
from repro.errors import SchedulingError
from repro.hardware.specs import GPUSpec
from repro.patterns import ZERO, StructuredInjective, Window2D
from repro.sim.node import SimNode
from repro.utils.rect import Rect


class ClusterStencil:
    """A 2-D stencil (Window2D → StructuredInjective) on a cluster.

    Args:
        spec: GPU model of every node (homogeneous cluster).
        num_nodes: Number of multi-GPU nodes.
        gpus_per_node: GPUs per node.
        board: Initial global board (rows divisible by ``num_nodes``).
        kernel: The per-tick kernel (same object the single-node
            framework runs).
        radius: Stencil radius (ghost depth).
        functional: Functional vs timing-only per-node simulation.
        network: Fabric calibration.

    The global boundary condition is ZERO (the slab decomposition makes
    global WRAP a cyclic exchange — supported by passing ``wrap=True``).
    """

    def __init__(
        self,
        spec: GPUSpec,
        num_nodes: int,
        gpus_per_node: int,
        board: np.ndarray | tuple[int, int],
        kernel: Kernel,
        radius: int = 1,
        functional: bool = True,
        network: NetworkCalibration | None = None,
        wrap: bool = False,
    ):
        if isinstance(board, tuple):
            rows, cols = board
            board_arr = None
            if functional:
                raise SchedulingError(
                    "functional mode requires an actual board"
                )
        else:
            board_arr = np.ascontiguousarray(board)
            rows, cols = board_arr.shape
        if rows % num_nodes != 0:
            raise SchedulingError(
                f"board rows {rows} not divisible by {num_nodes} nodes"
            )
        self.rows, self.cols = rows, cols
        self.radius = radius
        self.wrap = wrap
        self.num_nodes = num_nodes
        self.slab_rows = rows // num_nodes
        if self.slab_rows <= radius:
            raise SchedulingError("slab thinner than the stencil radius")
        self.kernel = kernel
        self.network = ClusterNetwork(num_nodes, network)
        self.functional = functional

        self.nodes = [
            SimNode(spec, gpus_per_node, functional=functional)
            for _ in range(num_nodes)
        ]
        self.scheds = [Scheduler(n) for n in self.nodes]
        # Per-node double-buffered slabs with ghost rows top and bottom.
        ext = self.slab_rows + 2 * radius
        self.slabs: list[list[Datum]] = []
        for i in range(num_nodes):
            pair = []
            for which in range(2):
                d = Matrix(ext, cols, np.int32, f"slab{i}.{which}")
                if functional:
                    backing = np.zeros((ext, cols), np.int32)
                    if which == 0 and board_arr is not None:
                        lo = i * self.slab_rows
                        backing[radius:-radius or None] = board_arr[
                            lo : lo + self.slab_rows
                        ]
                        self._fill_ghosts_from_board(backing, board_arr, i)
                    d.bind(backing)
                pair.append(d)
            self.slabs.append(pair)
        # Analyze both buffer directions on every node.
        for i in range(num_nodes):
            for a, b in ((0, 1), (1, 0)):
                self.scheds[i].analyze_call(
                    kernel,
                    Window2D(self.slabs[i][a], radius, ZERO),
                    StructuredInjective(self.slabs[i][b]),
                )
        self._tick = 0

    # -- ghosts --------------------------------------------------------------
    def _fill_ghosts_from_board(self, backing, board, i) -> None:
        r, s = self.radius, self.slab_rows
        lo = i * s
        if self.wrap or lo - r >= 0:
            idx = (np.arange(lo - r, lo) % self.rows) if self.wrap else np.arange(lo - r, lo)
            backing[:r] = board[idx]
        dn = lo + s
        if self.wrap or dn + r <= self.rows:
            idx = (np.arange(dn, dn + r) % self.rows) if self.wrap else np.arange(dn, dn + r)
            backing[-r:] = board[idx]

    def _edge_regions(self, which: int) -> tuple[Rect, Rect, Rect, Rect]:
        """(top edge, bottom edge, top ghost, bottom ghost) in slab
        coordinates, for the given buffer."""
        r, s = self.radius, self.slab_rows
        top_edge = Rect((r, 2 * r), (0, self.cols))
        bottom_edge = Rect((s, s + r), (0, self.cols))
        top_ghost = Rect((0, r), (0, self.cols))
        bottom_ghost = Rect((s + r, s + 2 * r), (0, self.cols))
        return top_edge, bottom_edge, top_ghost, bottom_ghost

    # -- one bulk-synchronous step ------------------------------------------------
    def step(self) -> None:
        """One tick on every node plus the inter-node ghost exchange."""
        src_i, dst_i = self._tick % 2, (self._tick + 1) % 2
        te, be, tg, bg = self._edge_regions(dst_i)

        # Local compute + edge-row gather, per node (independent clocks).
        finish_times = []
        for i in range(self.num_nodes):
            sched, node = self.scheds[i], self.nodes[i]
            src, dst = self.slabs[i][src_i], self.slabs[i][dst_i]
            sched.invoke(
                self.kernel,
                Window2D(src, self.radius, ZERO),
                StructuredInjective(dst),
            )
            if self.num_nodes > 1 or self.wrap:
                sched.gather_region(dst, te)
                sched.gather_region(dst, be)
            finish_times.append(sched.wait_all())

        # Exchange phase over the fabric (bulk-synchronous).
        r = self.radius
        nbytes = r * self.cols * 4
        done = list(finish_times)
        for i in range(self.num_nodes):
            for j, (src_rect, dst_rect) in (
                (i - 1, (te, bg)),  # my top edge -> upper neighbor's
                (i + 1, (be, tg)),  # bottom ghost, and vice versa
            ):
                if self.wrap:
                    j %= self.num_nodes
                elif not 0 <= j < self.num_nodes:
                    continue
                if j == i:  # single wrapped node: both edges local
                    src_arr = self.slabs[i][dst_i]
                    if self.functional:
                        src_arr.host[dst_rect.slices()] = src_arr.host[
                            src_rect.slices()
                        ]
                    self.scheds[i].mark_host_region_dirty(src_arr, dst_rect)
                    continue
                t = self.network.transfer(i, j, nbytes, finish_times[i])
                done[j] = max(done[j], t)
                if self.functional:
                    dst_slab = self.slabs[j][dst_i]
                    dst_slab.host[dst_rect.slices()] = self.slabs[i][
                        dst_i
                    ].host[src_rect.slices()]
                self.scheds[j].mark_host_region_dirty(
                    self.slabs[j][dst_i], dst_rect
                )
        # Global edges have no neighbor: their ghosts are empty space and
        # must be re-zeroed (the local tick wrote stencil outputs there).
        if not self.wrap:
            for i, ghost in ((0, tg), (self.num_nodes - 1, bg)):
                slab = self.slabs[i][dst_i]
                if self.functional:
                    slab.host[ghost.slices()] = 0
                self.scheds[i].mark_host_region_dirty(slab, ghost)
        # Synchronize node clocks to the barrier.
        barrier = max(done)
        for node in self.nodes:
            node.host_advance(max(0.0, barrier - node.time))
        self._tick += 1

    def run(self, ticks: int) -> float:
        """Run ``ticks`` steps; returns the cluster time afterwards."""
        for _ in range(ticks):
            self.step()
        return self.time

    @property
    def time(self) -> float:
        return max(n.time for n in self.nodes)

    # -- results ------------------------------------------------------------------
    def board(self) -> np.ndarray:
        """Gather and assemble the current global board (functional)."""
        if not self.functional:
            raise SchedulingError("board() requires functional mode")
        which = self._tick % 2
        out = np.zeros((self.rows, self.cols), np.int32)
        r, s = self.radius, self.slab_rows
        for i in range(self.num_nodes):
            self.scheds[i].gather(self.slabs[i][which])
            out[i * s : (i + 1) * s] = self.slabs[i][which].host[
                r : r + s
            ]
        return out
