"""Inter-node network model for the cluster extension (paper §8).

§8: *"In distributed HPC environments, communication latency is orders of
magnitude higher than within a multi-GPU node."* The model is a
switched fabric of the 2015 era (FDR InfiniBand-class by default): each
node has one full-duplex uplink; a message between nodes pays the MPI
software latency plus serialization on both uplinks; messages sharing an
uplink direction serialize.

The fabric is also the cluster master's observability surface
(DESIGN.md §15): :meth:`ClusterNetwork.busy_until` tells the failure
detector whether a silent node is dead or merely draining a large
transfer, and the per-link counters feed the ``--cluster`` benchmark
reports.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkCalibration:
    """Fabric constants (defaults: FDR InfiniBand + MPI, 2015-era)."""

    #: Per-direction uplink bandwidth, bytes/second.
    bandwidth: float = 5.0e9
    #: End-to-end message latency (MPI + NIC + switch), seconds. Compare
    #: the intra-node 8 us transfer setup: an order of magnitude more.
    latency: float = 20.0e-6


class ClusterNetwork:
    """Tracks per-node, per-direction uplink occupancy in cluster time."""

    def __init__(self, num_nodes: int, calib: NetworkCalibration | None = None):
        if num_nodes < 1:
            raise ValueError("need at least one node")
        self.num_nodes = num_nodes
        self.calib = calib or NetworkCalibration()
        # (node, direction) -> busy-until timestamp. 0=egress, 1=ingress.
        self._busy: dict[tuple[int, int], float] = {}
        #: (src, dst) -> number of completed transfer() calls on the link.
        self.link_transfers: dict[tuple[int, int], int] = {}
        #: (src, dst) -> cumulative payload bytes shipped on the link.
        self.link_bytes: dict[tuple[int, int], int] = {}

    def reset(self) -> None:
        """Forget all occupancy state and counters (fresh fabric)."""
        self._busy.clear()
        self.link_transfers.clear()
        self.link_bytes.clear()

    def busy_until(self, node: int) -> float:
        """Latest time either direction of ``node``'s uplink is occupied.

        The master's failure detector consults this before counting a
        heartbeat miss: a node whose NIC is still draining a checkpoint
        is busy, not dead.
        """
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"bad node {node}")
        return max(
            self._busy.get((node, 0), 0.0),
            self._busy.get((node, 1), 0.0),
        )

    def transfers(self, src: int, dst: int) -> int:
        """Completed transfer count on the directed link ``src -> dst``."""
        return self.link_transfers.get((src, dst), 0)

    def transfer(
        self,
        src: int,
        dst: int,
        nbytes: int,
        ready: float,
        factor: float = 1.0,
    ) -> float:
        """Schedule one message; returns its completion time.

        ``ready`` is when the payload is available on the source host.
        The message serializes behind earlier traffic on the source's
        egress and the destination's ingress channels. ``factor`` >= 1
        stretches the message's duration (a degraded/slow link — see
        :class:`~repro.cluster.faults.SlowLink`).
        """
        if not (0 <= src < self.num_nodes and 0 <= dst < self.num_nodes):
            raise ValueError(f"bad node pair {src}->{dst}")
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        if factor < 1.0:
            raise ValueError(f"link slowdown factor must be >= 1, got {factor}")
        if src == dst:
            return ready
        start = max(
            ready,
            self._busy.get((src, 0), 0.0),
            self._busy.get((dst, 1), 0.0),
        )
        duration = self.calib.latency + nbytes / self.calib.bandwidth
        end = start + duration * factor
        self._busy[(src, 0)] = end
        self._busy[(dst, 1)] = end
        key = (src, dst)
        self.link_transfers[key] = self.link_transfers.get(key, 0) + 1
        self.link_bytes[key] = self.link_bytes.get(key, 0) + int(nbytes)
        return end
