"""Inter-node network model for the cluster extension (paper §8).

§8: *"In distributed HPC environments, communication latency is orders of
magnitude higher than within a multi-GPU node."* The model is a
switched fabric of the 2015 era (FDR InfiniBand-class by default): each
node has one full-duplex uplink; a message between nodes pays the MPI
software latency plus serialization on both uplinks; messages sharing an
uplink direction serialize.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkCalibration:
    """Fabric constants (defaults: FDR InfiniBand + MPI, 2015-era)."""

    #: Per-direction uplink bandwidth, bytes/second.
    bandwidth: float = 5.0e9
    #: End-to-end message latency (MPI + NIC + switch), seconds. Compare
    #: the intra-node 8 us transfer setup: an order of magnitude more.
    latency: float = 20.0e-6


class ClusterNetwork:
    """Tracks per-node, per-direction uplink occupancy in cluster time."""

    def __init__(self, num_nodes: int, calib: NetworkCalibration | None = None):
        if num_nodes < 1:
            raise ValueError("need at least one node")
        self.num_nodes = num_nodes
        self.calib = calib or NetworkCalibration()
        # (node, direction) -> busy-until timestamp. 0=egress, 1=ingress.
        self._busy: dict[tuple[int, int], float] = {}

    def transfer(
        self, src: int, dst: int, nbytes: int, ready: float
    ) -> float:
        """Schedule one message; returns its completion time.

        ``ready`` is when the payload is available on the source host.
        The message serializes behind earlier traffic on the source's
        egress and the destination's ingress channels.
        """
        if not (0 <= src < self.num_nodes and 0 <= dst < self.num_nodes):
            raise ValueError(f"bad node pair {src}->{dst}")
        if src == dst:
            return ready
        start = max(
            ready,
            self._busy.get((src, 0), 0.0),
            self._busy.get((dst, 1), 0.0),
        )
        end = start + self.calib.latency + nbytes / self.calib.bandwidth
        self._busy[(src, 0)] = end
        self._busy[(dst, 1)] = end
        return end
