"""Per-node agent for the fault-tolerant cluster (DESIGN.md §15).

A :class:`NodeAgent` is the cluster master's deputy on one simulated
multi-GPU node: it owns the node's :class:`~repro.sim.node.SimNode`, the
MAPS-Multi :class:`~repro.core.scheduler.Scheduler` driving it, and the
node's double-buffered board slab. The agent executes the master's
commands — run one tick, gather edge rows, snapshot a checkpoint, store a
peer's checkpoint replica, rebuild onto a new slab range after recovery,
reboot with empty stores after a repair event — while everything
*between* nodes (messages, heartbeats, failure detection, re-slabbing,
probation) stays in :class:`~repro.cluster.master.ClusterMaster`.

Fault domains compose hierarchically here: an agent's node may carry its
own intra-node :class:`~repro.sim.faults.FaultPlan` (device failures,
stragglers, memory pressure — DESIGN.md §8/§10/§11), which the per-node
scheduler absorbs exactly as on a standalone node. Only when intra-node
recovery is exhausted (:class:`~repro.errors.UnrecoverableError` — every
GPU in the node retired) does the failure escalate to the cluster level,
surfacing as a :class:`~repro.errors.NodeFailure` with
``cause="agent-error"``.
"""

from __future__ import annotations

import numpy as np

from repro.core import Kernel, Matrix, Scheduler
from repro.core.datum import Datum
from repro.hardware.specs import GPUSpec
from repro.patterns import ZERO, StructuredInjective, Window2D
from repro.sim.faults import FaultPlan
from repro.sim.node import SimNode
from repro.utils.rect import Rect

#: int32 fill pattern written over a crashed node's host memory: any
#: recovery path that silently reads a dead node would produce boards
#: full of this value and fail the bit-identity asserts.
POISON = np.int32(-559038737)  # 0xDEADBEEF


class NodeAgent:
    """One node's slab executor (see module docstring).

    Args:
        node_id: Cluster-wide node index.
        spec: GPU model of this node's devices.
        gpus_per_node: Device count.
        cols: Global board width.
        kernel: The per-tick stencil kernel.
        radius: Stencil radius (ghost depth).
        functional: Functional vs timing-only simulation.
        faults: Optional intra-node fault plan (the inner fault domain).
    """

    def __init__(
        self,
        node_id: int,
        spec: GPUSpec,
        gpus_per_node: int,
        cols: int,
        kernel: Kernel,
        radius: int,
        functional: bool,
        faults: FaultPlan | None = None,
    ):
        self.node_id = node_id
        self.spec = spec
        self.gpus_per_node = gpus_per_node
        self.cols = cols
        self.kernel = kernel
        self.radius = radius
        self.functional = functional
        self.fault_plan = faults
        self.node = SimNode(
            spec, gpus_per_node, functional=functional, faults=faults
        )
        self.sched = Scheduler(self.node)
        #: Interior row range [lo, hi) of the global board (no slab yet).
        self.lo = 0
        self.hi = 0
        #: Double-buffered slab datums (ext = hi - lo + 2 * radius rows).
        self.slabs: list[Datum] | None = None
        #: Generation counter: bumped on every (re)build, names the datums.
        self.generation = 0
        #: checkpoint id -> (lo, hi, interior snapshot) of *this* node's
        #: slab. Keyed by the master's monotonic checkpoint id, not the
        #: tick: a post-recovery checkpoint re-covers the same tick with
        #: a new decomposition and must not clobber the committed one.
        self.local_ckpts: dict[int, tuple[int, int, np.ndarray | None]] = {}
        #: owner -> {checkpoint id -> (lo, hi, interior snapshot)}.
        self.peer_ckpts: dict[int, dict[int, tuple[int, int, np.ndarray | None]]] = {}
        #: Set once the master fences or declares this node dead.
        self.dead = False

    # -- geometry -------------------------------------------------------------
    @property
    def slab_rows(self) -> int:
        return self.hi - self.lo

    def edge_rects(self) -> tuple[Rect, Rect, Rect, Rect]:
        """(top edge, bottom edge, top ghost, bottom ghost) in slab
        coordinates of the current range."""
        r, s = self.radius, self.slab_rows
        top_edge = Rect((r, 2 * r), (0, self.cols))
        bottom_edge = Rect((s, s + r), (0, self.cols))
        top_ghost = Rect((0, r), (0, self.cols))
        bottom_ghost = Rect((s + r, s + 2 * r), (0, self.cols))
        return top_edge, bottom_edge, top_ghost, bottom_ghost

    def interior_rect(self) -> Rect:
        r = self.radius
        return Rect((r, r + self.slab_rows), (0, self.cols))

    # -- build / rebuild ------------------------------------------------------
    def build(
        self,
        lo: int,
        hi: int,
        region: np.ndarray | None,
        which: int,
    ) -> None:
        """Create and analyze the double-buffered slab for rows
        ``[lo, hi)``. ``region`` is the *extended* initial content
        (interior plus ghost rows, ``hi - lo + 2*radius`` tall) loaded
        into buffer ``which``; None in timing-only mode."""
        self.lo, self.hi = lo, hi
        self.generation += 1
        r = self.radius
        ext = self.slab_rows + 2 * r
        pair: list[Datum] = []
        for buf in range(2):
            d = Matrix(
                ext,
                self.cols,
                np.int32,
                f"slab{self.node_id}.g{self.generation}.{buf}",
            )
            if self.functional:
                backing = np.zeros((ext, self.cols), np.int32)
                if buf == which and region is not None:
                    backing[:] = region
                d.bind(backing)
            pair.append(d)
        self.slabs = pair
        for a, b in ((0, 1), (1, 0)):
            self.sched.analyze_call(
                self.kernel,
                Window2D(self.slabs[a], r, ZERO),
                StructuredInjective(self.slabs[b]),
            )

    def rebuild(
        self,
        lo: int,
        hi: int,
        region: np.ndarray | None,
        which: int,
    ) -> None:
        """Re-slab after cluster recovery: tear the old scheduler down
        (freeing every device buffer) and build a fresh one restricted to
        the node's surviving devices — the intra-node fault domain
        persists across the rebuild, mirroring the lease machinery of
        DESIGN.md §13: GPUs this node already lost stay lost, faults that
        already fired do not fire again."""
        self.sched.release()
        now = self.node.time
        alive = tuple(
            d.index
            for d in self.node.devices
            if self.node.engine.dead.get(d.index, float("inf")) > now
        )
        self.sched = Scheduler(self.node, devices=alive)
        self.build(lo, hi, region, which)

    # -- tick execution -------------------------------------------------------
    def compute(self, src_i: int, dst_i: int, gather_edges: bool) -> float:
        """Run one stencil tick ``slabs[src_i] -> slabs[dst_i]`` and (when
        the slab has cluster neighbours) gather the freshly computed edge
        rows to the host for the exchange phase. Returns the node time at
        completion. Intra-node faults are recovered inside ``wait_all``;
        an exhausted node raises UnrecoverableError to the master."""
        te, be, _, _ = self.edge_rects()
        src, dst = self.slabs[src_i], self.slabs[dst_i]
        self.sched.invoke(
            self.kernel,
            Window2D(src, self.radius, ZERO),
            StructuredInjective(dst),
        )
        if gather_edges:
            self.sched.gather_region(dst, te)
            self.sched.gather_region(dst, be)
        return self.sched.wait_all()

    # -- ghost handling -------------------------------------------------------
    def write_ghost(
        self, which: int, rect: Rect, data: np.ndarray | None
    ) -> None:
        """Install neighbour edge rows into a ghost region: update the
        host image (functional) and invalidate device copies so the next
        tick re-uploads through the normal machinery."""
        slab = self.slabs[which]
        if self.functional and data is not None:
            slab.host[rect.slices()] = data
        self.sched.mark_host_region_dirty(slab, rect)

    def copy_local_ghost(self, which: int, src: Rect, dst: Rect) -> None:
        """Single wrapped node: both edges exchange with itself."""
        slab = self.slabs[which]
        if self.functional:
            slab.host[dst.slices()] = slab.host[src.slices()]
        self.sched.mark_host_region_dirty(slab, dst)

    def zero_ghost(self, which: int, rect: Rect) -> None:
        """Re-zero a global-boundary ghost (empty space outside the
        board, overwritten by the tick's out-of-range stencil outputs)."""
        slab = self.slabs[which]
        if self.functional:
            slab.host[rect.slices()] = 0
        self.sched.mark_host_region_dirty(slab, rect)

    def edge_data(self, which: int, rect: Rect) -> np.ndarray | None:
        """Host copy of freshly gathered edge rows (functional mode)."""
        if not self.functional:
            return None
        return self.slabs[which].host[rect.slices()].copy()

    def ghost_rows(self, which: int, g_lo: int, g_hi: int) -> np.ndarray | None:
        """Host copy of global rows ``[g_lo, g_hi)`` held in this node's
        ghost regions (they lie outside ``[lo, hi)``)."""
        if not self.functional:
            return None
        r = self.radius
        off = g_lo - self.lo + r  # global -> extended slab coordinates
        return self.slabs[which].host[off : off + (g_hi - g_lo)].copy()

    def read_rows(self, which: int, g_lo: int, g_hi: int) -> np.ndarray | None:
        """Host copy of interior global rows ``[g_lo, g_hi)`` (the caller
        gathers first if device copies are fresher)."""
        if not self.functional:
            return None
        r = self.radius
        off = g_lo - self.lo + r
        return self.slabs[which].host[off : off + (g_hi - g_lo)].copy()

    def gather_rows(self, which: int, g_lo: int, g_hi: int) -> float:
        """Gather interior global rows ``[g_lo, g_hi)`` from devices to
        the host; returns the node time at completion."""
        r = self.radius
        rect = Rect(
            (g_lo - self.lo + r, g_hi - self.lo + r), (0, self.cols)
        )
        self.sched.gather_region(self.slabs[which], rect)
        return self.sched.wait_all()

    # -- checkpoints ----------------------------------------------------------
    def checkpoint_local(self, cid: int, which: int) -> float:
        """Coordinated-checkpoint phase 1: gather the full slab and keep a
        local host snapshot of the interior. Returns node time after the
        gather (the snapshot copy itself is host-side and free)."""
        t = self.sched.gather(self.slabs[which])
        data = None
        if self.functional:
            r = self.radius
            data = self.slabs[which].host[r : r + self.slab_rows].copy()
        self.local_ckpts[cid] = (self.lo, self.hi, data)
        return t

    def snapshot_from_host(self, cid: int, which: int) -> None:
        """Record a local checkpoint straight from the host image —
        used right after a rebuild, when the host *is* the freshest copy
        and no device gather is needed."""
        data = None
        if self.functional:
            r = self.radius
            data = self.slabs[which].host[r : r + self.slab_rows].copy()
        self.local_ckpts[cid] = (self.lo, self.hi, data)

    def store_peer_ckpt(
        self,
        owner: int,
        cid: int,
        lo: int,
        hi: int,
        data: np.ndarray | None,
    ) -> None:
        """Hold a replica of ``owner``'s checkpoint (rows ``[lo, hi)``)."""
        self.peer_ckpts.setdefault(owner, {})[cid] = (
            lo,
            hi,
            None if data is None else data.copy(),
        )

    def prune_ckpts(self, keep_cid: int) -> None:
        """Drop checkpoint generations older than ``keep_cid`` (called
        once a new coordinated checkpoint commits)."""
        for store in (self.local_ckpts, *self.peer_ckpts.values()):
            for c in [c for c in store if c < keep_cid]:
                del store[c]

    def checkpoint_rows(
        self, cid: int, g_lo: int, g_hi: int
    ) -> np.ndarray | None:
        """Rows ``[g_lo, g_hi)`` of checkpoint generation ``cid``, served
        from the local snapshot or any stored peer replica."""
        stores = [self.local_ckpts]
        stores.extend(self.peer_ckpts.values())
        for store in stores:
            rec = store.get(cid)
            if rec is None:
                continue
            lo, hi, data = rec
            if lo <= g_lo and g_hi <= hi:
                if data is None:
                    return None
                return data[g_lo - lo : g_hi - lo]
        raise KeyError(
            f"node {self.node_id} holds no replica of rows "
            f"[{g_lo}, {g_hi}) for checkpoint {cid}"
        )

    # -- failure --------------------------------------------------------------
    def crash(self, at_time: float) -> None:
        """Fail-stop the node: every device retired, every host-resident
        byte this agent holds — slabs, its own snapshots, peers' replicas
        — poisoned, so any recovery path that consulted a dead node would
        visibly corrupt the board instead of silently passing."""
        self.dead = True
        self.node.crash(at_time)
        if self.functional:
            if self.slabs is not None:
                for d in self.slabs:
                    if d.host is not None:
                        d.host.fill(POISON)
            for store in (self.local_ckpts, *self.peer_ckpts.values()):
                for _, (_, _, data) in store.items():
                    if data is not None:
                        data.fill(POISON)

    def fence(self) -> None:
        """Exclude a partitioned (but physically intact) node: the master
        stops driving it and never consults its now-stale data. The node
        stays out until a :class:`~repro.cluster.faults.NodeRepair` event
        brings it back through :meth:`revive` (elastic membership); with
        no repair scheduled, fencing is permanent."""
        self.dead = True

    def revive(self, now: float) -> None:
        """Reboot a repaired node at cluster time ``now``: a fresh
        :class:`~repro.sim.node.SimNode` (same spec, same intra-node
        fault plan — stateful plan counters persist, so intra-node faults
        that already fired do not fire again) and a fresh scheduler, with
        *empty* stores. The node rejoins holding nothing: a crashed
        node's slab and checkpoint replicas are gone, and a fenced node's
        copies are stale — either way the master's anti-entropy pass must
        re-ship checkpoint data before this node is useful again."""
        self.node = SimNode(
            self.spec,
            self.gpus_per_node,
            functional=self.functional,
            faults=self.fault_plan,
        )
        self.sched = Scheduler(self.node)
        self.lo = 0
        self.hi = 0
        self.slabs = None
        self.local_ckpts = {}
        self.peer_ckpts = {}
        self.dead = False
        self.node.host_advance(now)
