"""Deterministic fault injection for the simulated cluster (DESIGN.md §15).

The cluster-level mirror of :mod:`repro.sim.faults`: a
:class:`ClusterFaultPlan` describes when and where the *fabric and whole
nodes* misbehave, one level of the failure hierarchy above the per-node
:class:`~repro.sim.faults.FaultPlan`. Four fault classes are modelled:

* **Node crashes** (:class:`NodeCrash`): fail-stop of a whole multi-GPU
  node at a cluster time — its host and device memory are gone, it stops
  answering heartbeats, and every message to or from it is lost. The
  master detects the silence (heartbeat misses), fences the node, and
  re-slabs the board across survivors from checkpoint replicas.
* **Node repairs** (:class:`NodeRepair`): a crashed or fenced node comes
  back online at a cluster time and announces itself to the master. The
  master runs the elastic-membership probation protocol (DESIGN.md §15):
  after a capped-exponential rejoin backoff the node must answer clean
  heartbeats for ``probation_interval`` before being re-admitted as an
  idle spare, at which point the master's anti-entropy pass re-replicates
  the committed checkpoint generation onto it. A node that keeps
  crash→repair flapping is permanently banned after ``max_flaps`` cycles
  (:class:`~repro.errors.NodeBannedError`). With ``reslab_on_rejoin`` the
  master additionally re-runs the slab decomposition over the enlarged
  survivor set, reusing the rewind+replay recovery ladder, so compute
  capacity actually recovers.
* **Link/NIC transfer faults** (:class:`LinkFault`, or a seeded
  ``link_fault_rate``): the matching inter-node message is lost at send
  time. The master retries with capped-exponential backoff in simulated
  time; a persistently bad link surfaces as
  :class:`~repro.errors.LinkError`.
* **Network partitions** (:class:`Partition`): during the window, only
  nodes in the same group can exchange messages. The head node sits on
  the *largest* group (lowest node id breaking ties), so a partition
  hides the complement from the master; once the failure detector
  declares the isolated minority dead it is **fenced** — excluded so a
  stale minority cannot write back into the board. A fenced node stays
  out until a :class:`NodeRepair` event brings it back through the
  probation protocol; with no repair scheduled, fencing is permanent. A
  partition shorter than the detection latency is absorbed by the
  retry/backoff machinery and causes no recovery at all.
* **Slow links** (:class:`SlowLink`): multiplicative stretch of matching
  messages' durations inside an onset window. Slow links never lose
  messages; like intra-node stragglers they only stretch the timeline
  (and must not change results — asserted by tests).

Determinism: all state lives in the plan (explicit per-link counters plus
one ``random.Random(seed)``), and the master's bulk-synchronous drive
order is itself deterministic, so two runs with equal plans produce
identical fault sequences, identical detection times, identical recovery
actions and identical simulated times.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sim.faults import FaultPlan


@dataclass(frozen=True)
class NodeCrash:
    """Fail-stop failure of one whole node at a cluster time. Permanent
    unless a later :class:`NodeRepair` brings the node back."""

    node: int
    at_time: float


@dataclass(frozen=True)
class NodeRepair:
    """A crashed or fenced node comes back online at a cluster time.

    The repaired node boots with *empty* memory (its pre-crash slab and
    checkpoint replicas are gone; a fenced node's copies are stale and
    discarded on reboot) and announces itself to the master, which runs
    the probation protocol before re-admitting it as an idle spare. A
    repair scheduled while the node is still up is ignored; alternating
    crash/repair events per node form the node's availability timeline.
    """

    node: int
    at_time: float


@dataclass(frozen=True)
class LinkFault:
    """Transient loss of specific inter-node messages.

    The ``nth`` message sent on the directed link ``(src, dst)`` (1-based;
    ``None`` matches any endpoint) is lost, as are the following
    ``count - 1`` matching sends — ``count`` models how many consecutive
    attempts (including the master's retries) fail before the link heals.
    """

    src: int | None = None
    dst: int | None = None
    nth: int = 1
    count: int = 1


@dataclass(frozen=True)
class Partition:
    """The fabric splits into disconnected ``groups`` for a time window.

    ``groups`` must cover every node exactly once; messages between
    different groups are lost while ``start <= t < end``. The head node
    (master) can reach the largest group (lowest member id breaks ties).
    """

    groups: tuple[tuple[int, ...], ...]
    start: float
    end: float


@dataclass(frozen=True)
class SlowLink:
    """Degraded link: matching messages take ``factor`` times longer.

    ``src``/``dst`` of ``None`` match any endpoint; ``start``/``end``
    bound the onset window in cluster seconds (half-open; ``end=None``
    means the link never heals). Factors must be >= 1.
    """

    src: int | None = None
    dst: int | None = None
    factor: float = 1.0
    start: float = 0.0
    end: float | None = None


class ClusterFaultPlan:
    """A deterministic schedule of cluster faults plus the failure
    detector's and checkpointer's policy knobs (see module docstring).

    Args:
        seed: Seed for the plan's private RNG (used only by
            ``link_fault_rate`` draws).
        node_crashes: Whole-node fail-stop failures.
        node_repairs: Crashed/fenced nodes coming back online (elastic
            membership; see :class:`NodeRepair`).
        link_faults: Targeted transient message losses.
        partitions: Fabric partition windows.
        slow_links: Per-link slowdown factors.
        link_fault_rate: Probability that any sent message is lost
            (drawn from the seeded RNG per send; deterministic because
            send order is).
        retry_base: First retry backoff in cluster seconds.
        retry_cap: Upper bound on a single backoff interval.
        max_retries: Retries per message before the master gives up and
            hands the endpoint to the failure detector.
        ack_timeout: How long a sender waits for an ack before counting
            an attempt as lost.
        heartbeat_interval: Master -> node heartbeat period in cluster
            seconds.
        heartbeat_timeout: Ack deadline of a single heartbeat.
        miss_threshold: Consecutive heartbeat misses before a node is
            declared dead. A miss is only counted when the node's uplink
            is idle (``ClusterNetwork.busy_until``) — a node draining a
            checkpoint is busy, not dead.
        checkpoint_interval: Coordinated slab checkpoint period in ticks.
        checkpoint_replicas: Peer copies of each slab checkpoint (shipped
            to the ``r`` successor nodes in the ring). Default ``None``
            auto-sizes to ``(live_nodes - 1) // 2``, which keeps every
            region recoverable under any minority of simultaneous node
            losses.
        probation_interval: Simulated seconds of clean heartbeats a
            repaired node must answer before re-admission.
        rejoin_base: First rejoin backoff in cluster seconds — a node's
            k-th repair waits ``min(rejoin_base * 2**(k-1), rejoin_cap)``
            after announcing before its probation window starts
            (flap damping: repeat offenders wait longer).
        rejoin_cap: Upper bound on a single rejoin backoff.
        max_flaps: Crash→repair cycles a node may go through before the
            master permanently bans it
            (:class:`~repro.errors.NodeBannedError`).
        reslab_on_rejoin: After re-admitting a node, re-run the slab
            decomposition over the enlarged survivor set (rewind+replay,
            as in recovery) so the rejoined node carries compute again
            instead of idling as a spare.
        node_plans: Optional per-node intra-node
            :class:`~repro.sim.faults.FaultPlan`s — the inner level of
            the fault hierarchy. Each node's plan is installed on its own
            :class:`~repro.sim.node.SimNode`; an intra-node plan that
            exhausts a node's GPUs escalates to a cluster-level
            :class:`~repro.errors.NodeFailure` (``cause="agent-error"``).
    """

    def __init__(
        self,
        seed: int = 0,
        node_crashes: list[NodeCrash] | None = None,
        node_repairs: list[NodeRepair] | None = None,
        link_faults: list[LinkFault] | None = None,
        partitions: list[Partition] | None = None,
        slow_links: list[SlowLink] | None = None,
        link_fault_rate: float = 0.0,
        retry_base: float = 5e-5,
        retry_cap: float = 2e-3,
        max_retries: int = 6,
        ack_timeout: float = 2e-4,
        heartbeat_interval: float = 5e-4,
        heartbeat_timeout: float = 2e-4,
        miss_threshold: int = 3,
        checkpoint_interval: int = 4,
        checkpoint_replicas: int | None = None,
        probation_interval: float = 2e-3,
        rejoin_base: float = 5e-4,
        rejoin_cap: float = 4e-3,
        max_flaps: int = 3,
        reslab_on_rejoin: bool = False,
        node_plans: dict[int, FaultPlan] | None = None,
    ):
        self.seed = seed
        self.rng = random.Random(seed)
        self.node_crashes = list(node_crashes or [])
        self.node_repairs = list(node_repairs or [])
        self.link_faults = list(link_faults or [])
        self.partitions = list(partitions or [])
        self.link_fault_rate = float(link_fault_rate)
        self.retry_base = float(retry_base)
        self.retry_cap = float(retry_cap)
        self.max_retries = int(max_retries)
        self.ack_timeout = float(ack_timeout)
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.miss_threshold = int(miss_threshold)
        self.checkpoint_interval = int(checkpoint_interval)
        self.checkpoint_replicas = checkpoint_replicas
        self.probation_interval = float(probation_interval)
        self.rejoin_base = float(rejoin_base)
        self.rejoin_cap = float(rejoin_cap)
        self.max_flaps = int(max_flaps)
        self.reslab_on_rejoin = bool(reslab_on_rejoin)
        self.node_plans = dict(node_plans or {})
        if self.heartbeat_interval <= 0 or self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat interval/timeout must be positive")
        if self.miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if self.probation_interval <= 0:
            raise ValueError("probation_interval must be positive")
        if self.rejoin_base <= 0 or self.rejoin_cap <= 0:
            raise ValueError("rejoin backoff base/cap must be positive")
        if self.max_flaps < 1:
            raise ValueError("max_flaps must be >= 1")
        if not 0.0 <= self.link_fault_rate < 1.0:
            raise ValueError("link_fault_rate must be in [0, 1)")
        for p in self.partitions:
            seen: set[int] = set()
            for g in p.groups:
                if seen & set(g):
                    raise ValueError(f"partition groups overlap: {p}")
                seen |= set(g)
            if len(p.groups) < 2:
                raise ValueError(f"partition needs >= 2 groups: {p}")
            if p.start > p.end:
                raise ValueError(f"partition window inverted: {p}")
        #: (src, dst) spec-key -> messages sent, for `nth` matching
        #: (exact-link and wildcard specs count independently, mirroring
        #: TransferFault).
        self._link_counts: dict[tuple[int | None, int | None], int] = {}
        self._slow: list[SlowLink] = []
        for s in slow_links or []:
            if s.factor < 1.0:
                raise ValueError(f"slow-link factor must be >= 1, got {s}")
            if s.end is not None and s.start > s.end:
                raise ValueError(f"slow-link window inverted: {s}")
            self._slow.append(s)
        #: Per-node availability timeline: a normalized, time-sorted list
        #: of ``(time, is_crash)`` transitions. Redundant events are
        #: dropped during normalization (a crash while already down, a
        #: repair while already up), so the kept events strictly
        #: alternate crash/repair starting with a crash.
        self._timeline: dict[int, list[tuple[float, bool]]] = {}
        raw: dict[int, list[tuple[float, int]]] = {}
        for c in self.node_crashes:
            raw.setdefault(c.node, []).append((c.at_time, 0))
        for rep in self.node_repairs:
            raw.setdefault(rep.node, []).append((rep.at_time, 1))
        for node, evs in raw.items():
            kept: list[tuple[float, bool]] = []
            up = True
            # At equal times a crash sorts before its repair: the node
            # goes down and comes straight back (memory still lost).
            for t, kind in sorted(evs):
                if kind == 0 and up:
                    kept.append((t, True))
                    up = False
                elif kind == 1 and not up:
                    kept.append((t, False))
                    up = True
            self._timeline[node] = kept
        #: Raw per-node repair times, sorted. Deliberately NOT the
        #: normalized timeline: a node can be *fenced* (partitioned away)
        #: without ever crashing, so its repair event looks like a
        #: repair-while-up to the availability timeline — but the master
        #: must still see it to run the probation protocol. Whether a
        #: repair means anything is the master's membership decision,
        #: not the timeline's.
        self._repairs: dict[int, list[float]] = {}
        for rep in self.node_repairs:
            self._repairs.setdefault(rep.node, []).append(rep.at_time)
        for times in self._repairs.values():
            times.sort()
        #: Whether any repair event exists — the gate for all
        #: elastic-membership machinery (zero overhead when False).
        self.has_repairs = bool(self.node_repairs)
        #: Diagnostics, also used by `repro.bench --cluster` reports.
        self.link_faults_fired = 0
        self.heartbeats_sent = 0
        self.heartbeats_missed = 0
        self.messages_retried = 0
        self.nodes_lost = 0
        self.recoveries = 0
        self.checkpoints_taken = 0
        self.nodes_repaired = 0
        self.nodes_readmitted = 0
        self.nodes_banned = 0
        self.probations_failed = 0
        self.replicas_shipped = 0
        self.reslabs = 0

    # -- node crashes / repairs ----------------------------------------------
    def crash_time(self, node: int, now: float | None = None) -> float | None:
        """With ``now`` None: earliest fail-stop time of ``node`` (None if
        it never dies). With ``now``: the crash that started the down
        streak governing ``now`` (the latest crash at or before it), or
        None if the node is up at ``now``."""
        evs = self._timeline.get(node, [])
        if now is None:
            return evs[0][0] if evs else None
        last = None
        for t, is_crash in evs:
            if t > now:
                break
            last = t if is_crash else None
        return last

    def crashed(self, node: int, now: float) -> bool:
        """Whether ``node`` is down (crashed, not yet repaired) at
        cluster time ``now``."""
        return self.crash_time(node, now) is not None

    def crash_in(self, node: int, t0: float, t1: float) -> float | None:
        """Earliest crash of ``node`` in the half-open window
        ``(t0, t1]``, or None. The master calls this with ``t0`` set to
        the node's last (re-)admission time, so a crash *and* repair
        landing inside one tick window is still detected as a loss — a
        rebooted node announces as fresh, it never resumes silently."""
        for t, is_crash in self._timeline.get(node, []):
            if t > t1:
                break
            if is_crash and t > t0:
                return t
        return None

    def repairs_of(self, node: int) -> list[float]:
        """All repair times of ``node``, in order — raw events, not the
        normalized timeline, because a fenced-but-never-crashed node
        (e.g. a partitioned minority) must still be repairable."""
        return self._repairs.get(node, [])

    # -- partitions ----------------------------------------------------------
    def _active_partition(self, now: float) -> Partition | None:
        for p in self.partitions:
            if p.start <= now < p.end:
                return p
        return None

    def reachable(self, src: int, dst: int, now: float) -> bool:
        """Whether the fabric can carry ``src -> dst`` at ``now``
        (partitions only; crashes and link faults are separate checks)."""
        if src == dst:
            return True
        p = self._active_partition(now)
        if p is None:
            return True
        for g in p.groups:
            if src in g:
                return dst in g
        return True  # src not named in any group: unpartitioned

    def master_group(self, nodes: list[int], now: float) -> list[int]:
        """The subset of ``nodes`` the head node can reach at ``now``.

        The head sits on the largest partition group (lowest member id
        breaking ties); with no active partition it reaches everyone.
        """
        p = self._active_partition(now)
        if p is None:
            return list(nodes)
        candidates = []
        for g in p.groups:
            members = [n for n in nodes if n in g]
            if members:
                candidates.append(members)
        unlisted = [
            n for n in nodes if not any(n in g for g in p.groups)
        ]
        if unlisted:
            candidates.append(unlisted)
        if not candidates:
            return list(nodes)
        return max(candidates, key=lambda ms: (len(ms), -min(ms)))

    # -- transient link faults ------------------------------------------------
    def link_fault_now(self, src: int, dst: int) -> bool:
        """Whether the message being sent on ``src -> dst`` is lost.

        Stateful: advances the per-link send counters and, when a fault
        rate is set, draws from the plan's RNG. Call exactly once per
        send attempt.
        """
        fault = False
        for spec in self.link_faults:
            if spec.src is not None and spec.src != src:
                continue
            if spec.dst is not None and spec.dst != dst:
                continue
            key = (spec.src, spec.dst)
            n = self._link_counts.get(key, 0) + 1
            self._link_counts[key] = n
            if spec.nth <= n < spec.nth + spec.count:
                fault = True
        if self.link_fault_rate > 0.0:
            if self.rng.random() < self.link_fault_rate:
                fault = True
        if fault:
            self.link_faults_fired += 1
        return fault

    # -- slow links ----------------------------------------------------------
    def slow_factor(self, src: int, dst: int, now: float) -> float:
        """Worst active slowdown factor for a ``src -> dst`` message."""
        worst = 1.0
        for s in self._slow:
            if s.src is not None and s.src != src:
                continue
            if s.dst is not None and s.dst != dst:
                continue
            if now < s.start or (s.end is not None and now >= s.end):
                continue
            worst = max(worst, s.factor)
        return worst

    # -- retry policy --------------------------------------------------------
    def backoff(self, attempt: int) -> float:
        """Cluster-time delay before retry ``attempt`` (1-based):
        capped exponential ``min(retry_base * 2**(attempt-1), retry_cap)``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(self.retry_base * (2.0 ** (attempt - 1)), self.retry_cap)

    def rejoin_backoff(self, flap: int) -> float:
        """Cluster-time delay between a node's ``flap``-th repair
        announcement (1-based) and the start of its probation window:
        capped exponential ``min(rejoin_base * 2**(flap-1), rejoin_cap)``
        — repeat offenders wait longer (flap damping)."""
        if flap < 1:
            raise ValueError("flap is 1-based")
        return min(self.rejoin_base * (2.0 ** (flap - 1)), self.rejoin_cap)

    # -- checkpoint policy ----------------------------------------------------
    def replicas_for(self, live_nodes: int) -> int:
        """Peer-replica count for a checkpoint taken with ``live_nodes``
        survivors: the configured degree, clamped to the ring size, or
        the any-minority-safe default ``(live_nodes - 1) // 2``."""
        if self.checkpoint_replicas is None:
            return max(0, (live_nodes - 1) // 2)
        return max(0, min(int(self.checkpoint_replicas), live_nodes - 1))
