"""Hierarchical Segment Location Monitor — the node level (DESIGN.md §15).

Within a node, each scheduler's :class:`~repro.core.location_monitor.
LocationMonitor` tracks which *device* holds which segment of each datum.
The cluster master needs the same answer one level up: which *node* holds
which rows of the global board, in which role — as the live slab owner,
as a ghost replica of a neighbour's edge rows, or as a checkpoint replica
of a peer's whole slab. :class:`ClusterMonitor` is that map. It never
touches array data; it is pure metadata, consulted by the master to plan
recovery transfers and asserted against by tests.

The hierarchy is explicit: :meth:`node_monitor` descends from a node-level
row range to the owning node's intra-node ``LocationMonitor``, so a
segment query can be resolved board -> node -> device.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CheckpointRecord:
    """One region of the current coordinated checkpoint: rows
    ``[lo, hi)`` of the global board at ``tick``, held by ``holders``
    (first entry is the slab's owner at checkpoint time). ``cid`` is the
    master's monotonic checkpoint id — the key agents store the data
    under; distinct from the tick because a post-recovery checkpoint
    re-covers the checkpoint tick with a new decomposition."""

    tick: int
    cid: int
    lo: int
    hi: int
    holders: tuple[int, ...]


@dataclass(frozen=True)
class GhostRecord:
    """Rows ``[lo, hi)`` of the global board replicated in ``holder``'s
    ghost region as of the exchange that completed ``tick``."""

    holder: int
    lo: int
    hi: int
    tick: int


class ClusterMonitor:
    """Node-level slab / replica map over the per-node location monitors.

    Args:
        rows, cols: Global board shape.
        radius: Stencil radius (ghost depth).
        itemsize: Bytes per element (for transfer sizing).
    """

    def __init__(self, rows: int, cols: int, radius: int, itemsize: int):
        self.rows = rows
        self.cols = cols
        self.radius = radius
        self.itemsize = itemsize
        #: node -> (lo, hi): the live slab decomposition (interior rows).
        self.slabs: dict[int, tuple[int, int]] = {}
        #: node -> "live" | "dead" | "fenced" | "idle" | "probation"
        #: | "banned". Only "live" and "idle" nodes are cluster members
        #: (count toward quorum, serve checkpoint fetches): a node on
        #: probation joins the member set only once admitted, and a
        #: banned node never does.
        self.status: dict[int, str] = {}
        #: Current coordinated checkpoint, one record per region.
        self.checkpoints: list[CheckpointRecord] = []
        #: Ghost replicas recorded at the last completed exchange.
        self.ghosts: list[GhostRecord] = []
        #: node -> intra-node LocationMonitor (set by the master; the
        #: lower level of the hierarchy).
        self.node_monitors: dict[int, object] = {}

    # -- decomposition --------------------------------------------------------
    def assign(self, nodes: list[int], min_rows: int) -> dict[int, tuple[int, int]]:
        """Contiguous near-even row decomposition over ``nodes`` (in id
        order), each slab at least ``min_rows`` thick.

        If the board is too thin to give every node ``min_rows`` rows,
        trailing nodes are left idle (status ``"idle"``): a 64-row board
        cannot productively occupy 60 nodes. Returns and installs the new
        ``slabs`` map.
        """
        nodes = sorted(nodes)
        k = max(1, min(len(nodes), self.rows // max(1, min_rows)))
        chosen = nodes[:k]
        base, rem = divmod(self.rows, k)
        slabs: dict[int, tuple[int, int]] = {}
        lo = 0
        for i, n in enumerate(chosen):
            hi = lo + base + (1 if i < rem else 0)
            slabs[n] = (lo, hi)
            lo = hi
        self.slabs = slabs
        for n in nodes:
            self.status[n] = "live" if n in slabs else "idle"
        return slabs

    def order(self) -> list[int]:
        """Live slab owners in row order (the exchange ring)."""
        return sorted(self.slabs, key=lambda n: self.slabs[n][0])

    def neighbors(self, node: int, wrap: bool) -> tuple[int | None, int | None]:
        """(upper, lower) row-neighbours of ``node`` in the current ring."""
        ring = self.order()
        i = ring.index(node)
        up = ring[i - 1] if (i > 0 or wrap) else None
        down = ring[(i + 1) % len(ring)] if (i + 1 < len(ring) or wrap) else None
        return up, down

    # -- liveness -------------------------------------------------------------
    def live_nodes(self) -> list[int]:
        """Cluster members: slab owners plus idle spares. Nodes that are
        dead, fenced, on probation or banned are excluded — a repaired
        node counts only after the master admits it."""
        return sorted(
            n for n, s in self.status.items() if s in ("live", "idle")
        )

    def mark_dead(self, node: int) -> None:
        self.status[node] = "dead"
        self.slabs.pop(node, None)

    def mark_fenced(self, node: int) -> None:
        self.status[node] = "fenced"
        self.slabs.pop(node, None)

    def mark_probation(self, node: int) -> None:
        """A repaired node announced itself and is proving clean
        heartbeats; not yet a member."""
        self.status[node] = "probation"

    def mark_banned(self, node: int) -> None:
        """Flap-damping: the node exceeded ``max_flaps`` crash→repair
        cycles and is permanently excluded."""
        self.status[node] = "banned"
        self.slabs.pop(node, None)

    def mark_admitted(self, node: int) -> None:
        """Probation passed: the node re-enters the member set as an
        idle spare (it owns a slab again only after the next re-slab)."""
        self.status[node] = "idle"

    # -- checkpoints ----------------------------------------------------------
    def record_checkpoint(
        self,
        tick: int,
        cid: int,
        regions: list[tuple[int, int, tuple[int, ...]]],
    ) -> None:
        """Replace the coordinated checkpoint: ``regions`` is a list of
        ``(lo, hi, holders)`` covering the board at ``tick``, stored by
        the agents under checkpoint id ``cid``."""
        self.checkpoints = [
            CheckpointRecord(tick, cid, lo, hi, tuple(holders))
            for lo, hi, holders in regions
        ]

    def add_checkpoint_holder(self, lo: int, hi: int, node: int) -> None:
        """Record that ``node`` now holds a replica of the checkpoint
        region ``[lo, hi)`` (the master's anti-entropy re-replication
        pass shipped it one)."""
        for i, rec in enumerate(self.checkpoints):
            if rec.lo == lo and rec.hi == hi and node not in rec.holders:
                self.checkpoints[i] = CheckpointRecord(
                    rec.tick, rec.cid, rec.lo, rec.hi, rec.holders + (node,)
                )

    def replication_deficit(self, degree: int) -> int:
        """Total missing live replica slots across the checkpoint, for a
        target of ``degree + 1`` holders per region (owner + ``degree``
        peers), clamped to the member count. Zero means every region is
        back at the configured replication factor — the quantity
        anti-entropy re-replication drives down after a rejoin."""
        want = min(degree + 1, len(self.live_nodes()))
        missing = 0
        for rec in self.checkpoints:
            alive = sum(
                1
                for h in rec.holders
                if self.status.get(h) in ("live", "idle")
            )
            missing += max(0, want - alive)
        return missing

    @property
    def checkpoint_tick(self) -> int:
        """Tick of the current coordinated checkpoint (-1 if none)."""
        return self.checkpoints[0].tick if self.checkpoints else -1

    @property
    def checkpoint_id(self) -> int:
        """Agents' store key of the current checkpoint (-1 if none)."""
        return self.checkpoints[0].cid if self.checkpoints else -1

    def checkpoint_holders(self, lo: int, hi: int) -> list[tuple[int, int, list[int]]]:
        """Resolve rows ``[lo, hi)`` against the checkpoint: a list of
        ``(seg_lo, seg_hi, live_holders)`` segments. A segment with no
        surviving holder comes back with an empty list — the caller
        decides whether that is fatal."""
        out = []
        for rec in self.checkpoints:
            s_lo, s_hi = max(lo, rec.lo), min(hi, rec.hi)
            if s_lo >= s_hi:
                continue
            holders = [
                h for h in rec.holders if self.status.get(h) in ("live", "idle")
            ]
            out.append((s_lo, s_hi, holders))
        out.sort()
        return out

    def coverage_gap(self, lo: int, hi: int) -> tuple[int, int] | None:
        """First sub-range of ``[lo, hi)`` with no surviving checkpoint
        holder, or None when every row is recoverable."""
        cursor = lo
        for s_lo, s_hi, holders in self.checkpoint_holders(lo, hi):
            if s_lo > cursor:
                return (cursor, s_lo)
            if not holders:
                return (s_lo, s_hi)
            cursor = max(cursor, s_hi)
        if cursor < hi:
            return (cursor, hi)
        return None

    # -- ghosts ---------------------------------------------------------------
    def record_ghosts(self, records: list[GhostRecord]) -> None:
        """Replace the ghost-replica map after a completed exchange."""
        self.ghosts = list(records)

    def ghost_replicas_of(self, lo: int, hi: int) -> list[GhostRecord]:
        """Ghost records overlapping rows ``[lo, hi)`` held by nodes that
        are still live (recovery's integrity cross-check sources)."""
        return [
            g
            for g in self.ghosts
            if g.lo < hi
            and g.hi > lo
            and self.status.get(g.holder) in ("live", "idle")
        ]

    # -- hierarchy ------------------------------------------------------------
    def node_monitor(self, node: int):
        """Descend one level: the intra-node LocationMonitor of ``node``
        (device-level segment locations within that node's slab)."""
        return self.node_monitors.get(node)

    def describe(self) -> dict:
        """Snapshot of the hierarchy for observability and tests."""
        return {
            "slabs": dict(self.slabs),
            "status": dict(self.status),
            "checkpoint_tick": self.checkpoint_tick,
            "checkpoints": [
                (r.lo, r.hi, r.holders) for r in self.checkpoints
            ],
            "ghosts": [
                (g.holder, g.lo, g.hi, g.tick) for g in self.ghosts
            ],
            "nodes_with_monitors": sorted(self.node_monitors),
        }
