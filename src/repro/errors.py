"""Exception hierarchy for the MAPS-Multi reproduction.

The paper notes (§4.2) that the framework performs error checking in the
memory analyzer and raises runtime errors when programmer-provided access
patterns do not match task invocation parameters; these exceptions make
those failure modes explicit and testable.
"""

from __future__ import annotations


class MapsError(Exception):
    """Base class for all framework errors."""


class PatternMismatchError(MapsError):
    """Access pattern incompatible with the datum or task it is applied to."""


class AnalysisError(MapsError):
    """A task was invoked without a prior matching ``AnalyzeCall`` (§4.2)."""


class AllocationError(MapsError):
    """Device memory allocation failed (out of memory, bad size)."""


class SchedulingError(MapsError):
    """Scheduler invariant violated (bad task, unknown handle, ...)."""


class SimulationError(MapsError):
    """Discrete-event simulator invariant violated (deadlock, bad command)."""


class DeviceError(SimulationError):
    """Invalid device operation (bad stream, unallocated buffer, ...)."""
