"""Exception hierarchy for the MAPS-Multi reproduction.

The paper notes (§4.2) that the framework performs error checking in the
memory analyzer and raises runtime errors when programmer-provided access
patterns do not match task invocation parameters; these exceptions make
those failure modes explicit and testable.

The fault taxonomy (DESIGN.md §8) extends the hierarchy with *injected*
hardware failures: :class:`DeviceFault` is what the discrete-event engine
surfaces when a :class:`~repro.sim.faults.FaultPlan` fails a command, its
subclass :class:`TransientTransferError` marks the retryable case, and
:class:`UnrecoverableError` is the scheduler's verdict that no valid
replica of a needed segment survives the failure.
"""

from __future__ import annotations


class MapsError(Exception):
    """Base class for all framework errors."""


class PatternMismatchError(MapsError):
    """Access pattern incompatible with the datum or task it is applied to."""


class AnalysisError(MapsError):
    """A task was invoked without a prior matching ``AnalyzeCall`` (§4.2)."""


class AllocationError(MapsError):
    """Device memory allocation failed (out of memory, bad size).

    Attributes:
        device: Device index the allocation targeted (``None`` if unknown).
        injected: True when a :class:`~repro.sim.faults.FaultPlan` injected
            the failure (the scheduler then retires the device and
            re-segments its work); genuine capacity overflows propagate.
    """

    def __init__(
        self,
        message: str,
        device: int | None = None,
        injected: bool = False,
    ):
        super().__init__(message)
        self.device = device
        self.injected = injected


class CapacityError(AllocationError):
    """Device memory is oversubscribed beyond what graceful degradation can
    absorb (DESIGN.md §10).

    Raised only after the escalation ladder is exhausted: replica eviction
    could not make room and even maximal chunking (one thread-block row
    group per chunk) leaves an irreducible footprint — e.g. a full
    Traversal/``Block2DTransposed`` input every chunk must hold — that
    exceeds the device's capacity.

    Attributes:
        datum: Name of the datum dominating the irreducible footprint.
        required: Smallest achievable footprint in bytes (staging for the
            most aggressive chunking that is still semantically possible).
        capacity: The device's total memory capacity in bytes.
        device: Device index (inherited from :class:`AllocationError`).
    """

    def __init__(
        self,
        message: str,
        datum: str | None = None,
        required: int = 0,
        capacity: int = 0,
        device: int | None = None,
    ):
        super().__init__(message, device=device, injected=False)
        self.datum = datum
        self.required = required
        self.capacity = capacity


class SchedulingError(MapsError):
    """Scheduler invariant violated (bad task, unknown handle, ...)."""


class GraphCaptureError(SchedulingError):
    """Iteration-graph capture misuse (DESIGN.md §12): nested captures,
    captures without the plan cache, or a synchronizing call
    (``wait``/``gather``/``analyze_call``/host-dirty marking) issued while
    a capture is recording a steady-state period."""


class SimulationError(MapsError):
    """Discrete-event simulator invariant violated (deadlock, bad command)."""


class DeadlockError(SimulationError):
    """Queued commands can never execute: streams blocked on events that
    will never be recorded."""


class DeviceError(SimulationError):
    """Invalid device operation (bad stream, unallocated buffer, ...)."""


class DeviceFault(SimulationError):
    """An injected hardware fault hit a command at dispatch (DESIGN.md §8).

    Raised by the engine *before* the command's functional payload runs, so
    device state is never corrupted — the command simply did not happen.
    The scheduler catches this and runs its recovery path.

    Attributes:
        device: The faulty device index.
        time: Simulated time at which the fault was detected (the failed
            command's would-be start time).
        command: The command object that was about to dispatch (already
            popped from its stream).
        stream: The stream the command was popped from.
        kind: Fault category (``"device-failure"``, ``"transfer"``, ...).
    """

    def __init__(
        self,
        message: str,
        *,
        device: int | None = None,
        time: float = 0.0,
        command=None,
        stream=None,
        kind: str = "device-failure",
    ):
        super().__init__(message)
        self.device = device
        self.time = time
        self.command = command
        self.stream = stream
        self.kind = kind


class TransientTransferError(DeviceFault):
    """A D2D/H2D/D2H copy errored transiently; the transfer may be retried
    (from an alternate valid replica, with backoff in simulated time)."""

    def __init__(self, message: str, **kwargs):
        kwargs.setdefault("kind", "transfer")
        super().__init__(message, **kwargs)


class StragglerAlarm(SimulationError):
    """The progress watchdog fired: a command's projected completion
    exceeds ``patience`` times its calibrated duration (DESIGN.md §11).

    Raised by the engine at dispatch, *before* the command's functional
    payload runs — like :class:`DeviceFault`, the command is popped and
    nothing else has moved, so the scheduler can mitigate (speculatively
    re-execute the segment elsewhere, hedge the transfer from an alternate
    replica, or simply re-queue the command and pay the slowdown) and call
    the engine again. Only ever raised when the fault plan enables
    mitigation (``FaultPlan.mitigate_stragglers``); it never escapes the
    scheduler's wait loops.

    Attributes:
        device: The lagging device.
        time: The watchdog deadline, ``start + patience * nominal`` —
            mitigation actions cannot begin before this simulated time.
        start: The command's would-be dispatch time.
        nominal: The command's calibrated (un-stretched) duration.
        projected_end: ``start + stretched duration`` — when the command
            would complete if left alone (the watchdog's throughput
            estimate of the degraded device, exact in simulation).
        command: The command that was about to dispatch (already popped).
        stream: The stream it was popped from.
        kind: ``"kernel"`` or ``"transfer"``.
    """

    def __init__(
        self,
        message: str,
        *,
        device: int | None = None,
        time: float = 0.0,
        start: float = 0.0,
        nominal: float = 0.0,
        projected_end: float = 0.0,
        command=None,
        stream=None,
        kind: str = "kernel",
    ):
        super().__init__(message)
        self.device = device
        self.time = time
        self.start = start
        self.nominal = nominal
        self.projected_end = projected_end
        self.command = command
        self.stream = stream
        self.kind = kind


class StragglerTimeoutError(SimulationError):
    """Straggler mitigation gave up on a transfer stuck behind a degraded
    link: no alternate replica/route exists and the straggler budget
    (``FaultPlan.max_speculations``) is exhausted (DESIGN.md §11). The
    application should treat this like an unrecoverable timeout.

    Attributes:
        device: The degraded device the transfer was pinned to.
        time: Simulated time of the watchdog deadline that gave up.
    """

    def __init__(
        self, message: str, device: int | None = None, time: float = 0.0
    ):
        super().__init__(message)
        self.device = device
        self.time = time


class UnrecoverableError(MapsError):
    """Fault recovery is impossible: no valid replica of a needed segment
    survives (or the last device failed). The application must restart
    from its own checkpoint."""


class NodeFailure(SimulationError):
    """A whole multi-GPU node failed at the cluster level (DESIGN.md §15).

    Raised conceptually by the cluster master's failure detector when a
    node is declared dead: it crashed (fail-stop — its host and device
    memory are gone), stopped answering heartbeats, or its agent reported
    an intra-node :class:`UnrecoverableError` (every GPU in the node
    retired — the node-level fault domain escalation). Recorded in
    :attr:`ClusterMaster.events <repro.cluster.ClusterMaster>`; escapes
    to applications only as the ``__cause__`` of a
    :class:`ClusterRecoveryError` when the cluster cannot recover.

    Attributes:
        node: The failed node's id.
        time: Cluster time at which the failure detector declared it dead
            (>= the actual crash time by the detection latency).
        cause: ``"crash"``, ``"unreachable"``, ``"agent-error"`` or
            ``"flapping"`` (the :class:`NodeBannedError` subclass).
    """

    def __init__(
        self,
        message: str,
        node: int | None = None,
        time: float = 0.0,
        cause: str = "crash",
    ):
        super().__init__(message)
        self.node = node
        self.time = time
        self.cause = cause


class NodeBannedError(NodeFailure):
    """A repaired node flapped too often and is permanently banned from
    re-admission (DESIGN.md §15, elastic membership).

    Every crash→repair cycle counts as a *flap*; a node announcing its
    repair after more than ``ClusterFaultPlan.max_flaps`` flaps is marked
    ``"banned"`` instead of entering probation — flap damping keeps an
    unstable machine from repeatedly triggering probation, re-replication
    and re-slab churn. Recorded in :attr:`ClusterMaster.events
    <repro.cluster.ClusterMaster>` and the membership log; like any
    detected failure it does not escape to applications on its own.

    Attributes:
        flaps: Crash→repair cycles observed when the ban was imposed.
    """

    def __init__(
        self,
        message: str,
        node: int | None = None,
        time: float = 0.0,
        flaps: int = 0,
    ):
        super().__init__(message, node=node, time=time, cause="flapping")
        self.flaps = flaps


class LinkError(SimulationError):
    """An inter-node message exhausted its retry budget on a faulty
    fabric link (DESIGN.md §15).

    Every send is retried with capped-exponential backoff in simulated
    time (:meth:`ClusterFaultPlan.backoff
    <repro.cluster.faults.ClusterFaultPlan>`); this error means
    ``max_retries`` consecutive attempts failed while both endpoints
    were alive and unpartitioned — a persistently bad link/NIC.

    Attributes:
        src: Sending node.
        dst: Receiving node.
        time: Cluster time when the last attempt was given up.
        attempts: Number of attempts made (``max_retries + 1``).
    """

    def __init__(
        self,
        message: str,
        src: int | None = None,
        dst: int | None = None,
        time: float = 0.0,
        attempts: int = 0,
    ):
        super().__init__(message)
        self.src = src
        self.dst = dst
        self.time = time
        self.attempts = attempts


class PartitionError(LinkError):
    """A network partition separates two nodes (DESIGN.md §15): the
    message failed not because the link is bad but because the fabric is
    split into disconnected groups. Nodes the master cannot reach are
    *fenced* — excluded from the cluster so a stale minority can never
    write back into the board. A fenced node rejoins only through the
    elastic-membership probation protocol after a
    :class:`~repro.cluster.faults.NodeRepair` event; with no repair
    scheduled, fencing is permanent.

    Attributes:
        isolated: The node group cut off from the master's side
            (the minority being fenced), when known.
    """

    def __init__(
        self,
        message: str,
        isolated: "tuple[int, ...]" = (),
        **kwargs,
    ):
        super().__init__(message, **kwargs)
        self.isolated = tuple(isolated)


class ClusterRecoveryError(UnrecoverableError):
    """Cluster-level recovery is impossible (DESIGN.md §15): no surviving
    node holds a checkpoint replica of some board region, the master's
    side of a partition lost its quorum (a split-brain the fencing rule
    refuses to resolve), no nodes survive at all, or the recovered state
    failed the ghost-replica integrity cross-check. Subclasses
    :class:`UnrecoverableError` deliberately — the application-facing
    contract is the same: restart from your own checkpoint.

    Attributes:
        reason: Machine-readable category (``"no-survivors"``,
            ``"no-quorum"``, ``"checkpoint-lost"``, ``"ghost-mismatch"``,
            ``"thrashing"``).
        time: Cluster time at which recovery was abandoned.
    """

    def __init__(
        self, message: str, reason: str = "", time: float = 0.0
    ):
        super().__init__(message)
        self.reason = reason
        self.time = time


class QuotaExceededError(MapsError):
    """A job violated its tenant's resource quota (DESIGN.md §13).

    Raised by the job server at *admission* when a submission can never
    fit its tenant's allowance (GPU count, irreducible per-device memory
    footprint, declared time limit), or at *runtime* when a running job's
    accumulated simulated execution time crosses ``max_sim_time``.

    Deliberately **not** a subclass of :class:`AllocationError`: the
    memory-pressure escalation ladder (DESIGN.md §10) catches
    ``AllocationError`` to degrade gracefully, and a quota verdict must
    terminate the job rather than be absorbed by eviction or chunking.
    (Memory quotas are instead enforced by clamping device capacity for
    the tenant's lease, so the ladder *does* engage below the clamp.)

    Attributes:
        tenant: Tenant whose quota was violated.
        resource: ``"gpus"``, ``"device-memory"`` or ``"sim-time"``.
        requested: Amount the job asked for / consumed.
        limit: The tenant's allowance for the resource.
    """

    def __init__(
        self,
        message: str,
        tenant: str | None = None,
        resource: str | None = None,
        requested: float = 0.0,
        limit: float = 0.0,
    ):
        super().__init__(message)
        self.tenant = tenant
        self.resource = resource
        self.requested = requested
        self.limit = limit


class DeadlineExceededError(MapsError):
    """A job missed its absolute completion deadline (DESIGN.md §13).

    Deadlines are checked at checkpoint boundaries against the server's
    simulated clock, so queue wait counts toward the deadline — a job
    starved past its deadline fails exactly like one that ran too long.

    Attributes:
        job_id: The killed job.
        deadline: The absolute simulated-time deadline.
        now: Simulated time when the miss was detected.
    """

    def __init__(
        self,
        message: str,
        job_id: str | None = None,
        deadline: float = 0.0,
        now: float = 0.0,
    ):
        super().__init__(message)
        self.job_id = job_id
        self.deadline = deadline
        self.now = now


class PreemptedError(MapsError):
    """A job was preempted at a checkpoint boundary (DESIGN.md §13).

    Control-flow signal of the job server's time slicing, recorded in the
    job's history: the job's host-resident checkpoint is complete, its
    lease was torn down, and the job was requeued to resume from the last
    completed iteration. It only escapes to applications that drive a
    :class:`~repro.server.JobServer` manually and ask it to.

    Attributes:
        job_id: The preempted job.
        at_iteration: Iterations completed when the job yielded.
        time: Simulated time of the preemption.
    """

    def __init__(
        self,
        message: str,
        job_id: str | None = None,
        at_iteration: int = 0,
        time: float = 0.0,
    ):
        super().__init__(message)
        self.job_id = job_id
        self.at_iteration = at_iteration
        self.time = time
